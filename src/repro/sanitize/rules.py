"""lvm-san rule plugins.

Each rule states one invariant the simulator's claims depend on:

========  ==========================================================
LVM001    no wall-clock reads in cycle-domain modules
LVM002    no unseeded randomness in cycle-domain modules
LVM003    cycle bindings stay integers (no float contamination)
LVM004    ``_ACTIVE`` instrumentation gates are a single ``is``/``is
          not None`` check
LVM005    fault-site strings resolve against ``repro.faults.sites``
LVM006    every fused ``*_fast`` path has a reachable generic-fallback
          guard
========  ==========================================================

``LVM000`` is reserved for parse errors (emitted by the engine).
Rules are pure AST walks — no imports of the simulator — so the linter
can run on a broken tree without executing it.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, Iterator, List, Optional

from repro.sanitize.engine import FileContext, Finding, Rule

# ----------------------------------------------------------------------
# shared helpers


def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local binding -> absolute dotted name for imports."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                aliases[bound] = alias.name if alias.asname else bound
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def _resolve(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve ``a.b.c`` through the import alias map, or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(aliases.get(node.id, node.id))
    return ".".join(reversed(parts))


def _parent_map(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


# ----------------------------------------------------------------------
# LVM001 — wall clock


_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock",
        "time.sleep",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class NoWallClockRule(Rule):
    rule_id = "LVM001"
    title = "no wall clock in the cycle domain"
    rationale = (
        "Cycle-domain modules (hw/core/rvm/timewarp/obs/faults) must "
        "derive time only from simulated cycles; any wall-clock read "
        "makes runs non-replayable."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_cycle_domain:
            return
        aliases = _collect_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _resolve(node.func, aliases)
            if name in _WALL_CLOCK:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock call {name}() in a cycle-domain module; "
                    "use the simulated cycle counters instead",
                )


# ----------------------------------------------------------------------
# LVM002 — unseeded randomness


#: numpy.random entry points that are fine *when given a seed*.
_SEEDABLE_NUMPY = frozenset(
    {"numpy.random.default_rng", "numpy.random.Generator", "numpy.random.RandomState"}
)


def _has_args(call: ast.Call) -> bool:
    return bool(call.args or call.keywords)


class NoUnseededRandomnessRule(Rule):
    rule_id = "LVM002"
    title = "no unseeded randomness in the cycle domain"
    rationale = (
        "Randomness in cycle-domain modules must come from an "
        "explicitly seeded random.Random(seed) instance so every run "
        "replays; the module-level random.* functions share hidden "
        "global state and secrets/os.urandom are never replayable."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_cycle_domain:
            return
        aliases = _collect_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _resolve(node.func, aliases)
            if name is None:
                continue
            message = None
            if name == "random.Random":
                if not _has_args(node):
                    message = "random.Random() without a seed"
            elif name == "random.SystemRandom" or name.startswith("secrets."):
                message = f"{name} is never replayable"
            elif name in ("os.urandom", "uuid.uuid4"):
                message = f"{name} is never replayable"
            elif name.startswith("random."):
                message = f"module-level {name}() uses the hidden global RNG"
            elif name.startswith("numpy.random."):
                if name not in _SEEDABLE_NUMPY:
                    message = f"module-level {name}() uses the hidden global RNG"
                elif not _has_args(node):
                    message = f"{name}() without a seed"
            if message is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"{message}; use random.Random(seed) threaded from the config",
                )


# ----------------------------------------------------------------------
# LVM003 — integer cycle arithmetic


_CYCLE_NAME = re.compile(r"(?:^|_)cycles?$")
#: ``records_per_cycle`` and friends are rates, not cycle counts.
_RATE_NAME = re.compile(r"(?:^|_)per_cycles?$")


def _is_cycle_count(name: str) -> bool:
    return bool(_CYCLE_NAME.search(name)) and not _RATE_NAME.search(name)


def _cycle_named(target: ast.expr) -> bool:
    if isinstance(target, ast.Name):
        return _is_cycle_count(target.id)
    if isinstance(target, ast.Attribute):
        return _is_cycle_count(target.attr)
    if isinstance(target, (ast.Tuple, ast.List)):
        return any(_cycle_named(elt) for elt in target.elts)
    return False


def _float_taint(value: ast.expr) -> Optional[str]:
    for sub in ast.walk(value):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            return "a float literal"
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
            return "true division (use //)"
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "float"
        ):
            return "a float() conversion"
    return None


class IntegerCyclesRule(Rule):
    rule_id = "LVM003"
    title = "cycle bindings stay integers"
    rationale = (
        "Cycle counts are exact integers end to end; a float creeping "
        "into a cycle/cycles binding silently breaks record ordering "
        "and replay equality.  Reporting code that genuinely wants a "
        "ratio should bind a non-cycle name or suppress with "
        "# lvm-san: ignore[LVM003]."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_cycle_domain:
            return
        for node in ast.walk(ctx.tree):
            taint = None
            if isinstance(node, ast.Assign):
                if any(_cycle_named(t) for t in node.targets):
                    taint = _float_taint(node.value)
            elif isinstance(node, ast.AugAssign):
                if _cycle_named(node.target):
                    if isinstance(node.op, ast.Div):
                        taint = "true division (use //=)"
                    else:
                        taint = _float_taint(node.value)
            elif isinstance(node, ast.AnnAssign):
                if _cycle_named(node.target):
                    ann = node.annotation
                    if isinstance(ann, ast.Name) and ann.id == "float":
                        taint = "a float annotation"
                    elif node.value is not None:
                        taint = _float_taint(node.value)
            if taint is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"cycle binding assigned from {taint}; cycle arithmetic "
                    "must stay integral",
                )


# ----------------------------------------------------------------------
# LVM004 — instrumentation gate pattern


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _active_ref(node: ast.AST) -> Optional[str]:
    """Unparsed source of ``_ACTIVE`` / ``mod._ACTIVE`` refs, else None."""
    if isinstance(node, ast.Name) and node.id == "_ACTIVE":
        return "_ACTIVE"
    if isinstance(node, ast.Attribute) and node.attr == "_ACTIVE":
        return ast.unparse(node)
    return None


class GatePatternRule(Rule):
    rule_id = "LVM004"
    title = "_ACTIVE gates are a single `is None` check"
    rationale = (
        "Instrumentation globals (faults.plan._ACTIVE, obs.core._ACTIVE, "
        "sanitize.race._ACTIVE) gate hot paths with exactly one "
        "`is None` identity check.  Truthiness tests or == None change "
        "semantics for falsy objects, and member access outside an "
        "`is not None` guard defeats the single-check discipline."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        parents = _parent_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            ref = _active_ref(node)
            if ref is None:
                continue
            parent = parents.get(node)
            # `mod._ACTIVE` contains the inner Name `mod`; skip the
            # Name when its parent is the Attribute we already handle.
            if (
                isinstance(node, ast.Name)
                and isinstance(parent, ast.Attribute)
                and parent.attr == "_ACTIVE"
            ):
                continue
            finding = self._classify(ctx, node, ref, parent, parents)
            if finding is not None:
                yield finding

    def _classify(
        self,
        ctx: FileContext,
        node: ast.AST,
        ref: str,
        parent: Optional[ast.AST],
        parents: Dict[ast.AST, ast.AST],
    ) -> Optional[Finding]:
        if isinstance(parent, ast.Compare):
            if parent.left is node or node in parent.comparators:
                op = parent.ops[0] if parent.ops else None
                other = parent.comparators[0] if parent.left is node else parent.left
                if isinstance(op, (ast.Eq, ast.NotEq)) and _is_none(other):
                    return self.finding(
                        ctx,
                        parent,
                        f"compare {ref} with `is None` / `is not None`, "
                        "not equality",
                    )
                return None
        if self._is_truthiness(node, parent):
            return self.finding(
                ctx,
                node,
                f"truthiness test on {ref}; the gate must be a single "
                "`is None` identity check",
            )
        if isinstance(parent, ast.Attribute) and parent.value is node:
            if not self._guarded(node, ref, parents):
                return self.finding(
                    ctx,
                    parent,
                    f"member access on {ref} outside an `if {ref} is not "
                    "None:` guard; capture it to a local first",
                )
        return None

    @staticmethod
    def _is_truthiness(node: ast.AST, parent: Optional[ast.AST]) -> bool:
        if isinstance(parent, (ast.If, ast.While)) and parent.test is node:
            return True
        if isinstance(parent, ast.UnaryOp) and isinstance(parent.op, ast.Not):
            return True
        if isinstance(parent, ast.BoolOp) and node in parent.values:
            return True
        if isinstance(parent, ast.IfExp) and parent.test is node:
            return True
        if isinstance(parent, ast.Assert) and parent.test is node:
            return True
        return False

    @staticmethod
    def _guarded(node: ast.AST, ref: str, parents: Dict[ast.AST, ast.AST]) -> bool:
        guard = f"{ref} is not None"
        current: Optional[ast.AST] = node
        while current is not None:
            current = parents.get(current)
            if isinstance(current, ast.If) and ast.unparse(current.test) == guard:
                return True
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
        return False


# ----------------------------------------------------------------------
# LVM005 — fault-site registry


_SITE_CALLS = frozenset({"hit", "at_site", "CrashSpec"})


def _call_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class FaultSiteRule(Rule):
    rule_id = "LVM005"
    title = "fault-site strings resolve against faults/sites.py"
    rationale = (
        "Every injection-site string passed to hit()/CrashSpec() must "
        "exist in the generated registry repro/faults/sites.py, so a "
        "typo'd or stale site fails lint instead of silently never "
        "firing.  Regenerate with `python -m repro lint --regen-sites`."
    )

    def __init__(self, known_sites: Optional[FrozenSet[str]] = None) -> None:
        self.known_sites = known_sites

    def _sites(self) -> Optional[FrozenSet[str]]:
        if self.known_sites is None:
            try:
                from repro.faults import sites
            except ImportError:
                return None
            self.known_sites = frozenset(sites.ALL_SITES)
        return self.known_sites

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        in_faults = ctx.package_parts[:2] == ("repro", "faults")
        sites = self._sites()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node.func)
            if name not in _SITE_CALLS:
                continue
            site_arg: Optional[ast.expr] = node.args[0] if node.args else None
            if site_arg is None:
                for keyword in node.keywords:
                    if keyword.arg == "site":
                        site_arg = keyword.value
                        break
            if site_arg is None:
                continue
            if isinstance(site_arg, ast.Constant) and isinstance(site_arg.value, str):
                if sites is not None and site_arg.value not in sites:
                    yield self.finding(
                        ctx,
                        site_arg,
                        f"unknown fault site {site_arg.value!r}; fix the name "
                        "or regenerate repro/faults/sites.py",
                    )
            elif not in_faults:
                yield self.finding(
                    ctx,
                    site_arg,
                    f"{name}() site must be a string literal so the "
                    "registry sweep can enumerate it",
                )


# ----------------------------------------------------------------------
# LVM006 — fused fast paths keep a generic fallback


#: Fused paths whose names do not end in ``_fast`` but are fast paths.
FUSED_EXTRA = frozenset({"_write_run_bus_logged"})


def _has_fallback_guard(func: ast.AST) -> bool:
    for sub in ast.walk(func):
        if isinstance(sub, ast.Attribute) and sub.attr == "_ACTIVE":
            return True
        if isinstance(sub, ast.Name) and sub.id == "_ACTIVE":
            return True
        if isinstance(sub, ast.Call):
            name = _call_name(sub.func)
            if name == "trace_detail_active":
                return True
    return False


def _calls_function(func: ast.AST, name: str) -> bool:
    for sub in ast.walk(func):
        if isinstance(sub, ast.Call) and _call_name(sub.func) == name:
            return True
    return False


class FastPathFallbackRule(Rule):
    rule_id = "LVM006"
    title = "fused fast paths keep a reachable generic fallback"
    rationale = (
        "Fused fast paths (*_fast and friends) skip per-event "
        "instrumentation, so either the function or every one of its "
        "same-module callers must guard on the instrumentation gates "
        "(_ACTIVE / trace_detail_active) and fall back to the generic "
        "path — otherwise fault plans and detailed tracing silently "
        "miss events."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        defs = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for func in defs:
            if not (func.name.endswith("_fast") or func.name in FUSED_EXTRA):
                continue
            if _has_fallback_guard(func):
                continue
            callers = [
                other
                for other in defs
                if other is not func and _calls_function(other, func.name)
            ]
            if callers and all(_has_fallback_guard(c) for c in callers):
                continue
            yield self.finding(
                ctx,
                func,
                f"fused fast path {func.name}() has no reachable "
                "generic-fallback guard (_ACTIVE / trace_detail_active) "
                "here or in its callers",
            )


# ----------------------------------------------------------------------


def all_rules() -> List[Rule]:
    """Every rule, in rule-id order."""
    return [
        NoWallClockRule(),
        NoUnseededRandomnessRule(),
        IntegerCyclesRule(),
        GatePatternRule(),
        FaultSiteRule(),
        FastPathFallbackRule(),
    ]


def rules_by_id() -> Dict[str, Rule]:
    return {rule.rule_id: rule for rule in all_rules()}
