"""Sparse integer vector clocks for happens-before tracking.

A vector clock maps a CPU index to the number of relevant events that
CPU had performed the last time the owner synchronized with it.  Event
``a`` happens-before event ``b`` iff ``a``'s epoch ``(cpu, t)`` is
covered by ``b``'s clock: ``b.clock[cpu] >= t``.  Clocks are sparse
dicts rather than fixed-width lists so the detector needs no up-front
CPU count and idle CPUs cost nothing.

Everything here is plain integer bookkeeping in the cycle domain's
*metadata* space — it never touches simulated time, so it cannot
perturb cycle accounting.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple


class VectorClock:
    """A sparse ``cpu_index -> epoch`` map with join/cover operations."""

    __slots__ = ("_epochs",)

    def __init__(self, epochs: Dict[int, int] | None = None) -> None:
        self._epochs: Dict[int, int] = dict(epochs) if epochs else {}

    def get(self, cpu: int) -> int:
        """The epoch this clock holds for ``cpu`` (0 if never seen)."""
        return self._epochs.get(cpu, 0)

    def tick(self, cpu: int) -> int:
        """Advance ``cpu``'s own component and return the new epoch."""
        epoch = self._epochs.get(cpu, 0) + 1
        self._epochs[cpu] = epoch
        return epoch

    def covers(self, cpu: int, epoch: int) -> bool:
        """True iff the event ``(cpu, epoch)`` happens-before this clock."""
        return self._epochs.get(cpu, 0) >= epoch

    def join(self, other: "VectorClock") -> None:
        """Merge ``other`` into self (component-wise max)."""
        for cpu, epoch in other._epochs.items():
            if self._epochs.get(cpu, 0) < epoch:
                self._epochs[cpu] = epoch

    def copy(self) -> "VectorClock":
        return VectorClock(self._epochs)

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(sorted(self._epochs.items()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._epochs == other._epochs

    def __repr__(self) -> str:
        inner = ", ".join(f"{c}: {e}" for c, e in sorted(self._epochs.items()))
        return f"VectorClock({{{inner}}})"
