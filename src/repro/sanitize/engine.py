"""AST lint framework for the repo's simulator invariants.

The engine is deliberately small: a :class:`Rule` is a plugin that
walks one file's AST and yields :class:`Finding`\\ s; the engine owns
file discovery, parsing, suppression comments, and ordering.  Rules
live in :mod:`repro.sanitize.rules`; ``python -m repro lint`` is the
CLI front end (:mod:`repro.sanitize.cli`).

Suppression is per line and per rule::

    t_ms = cycles / freq_mhz  # lvm-san: ignore[LVM003]
    anything_goes_here()      # lvm-san: ignore

A bare ``ignore`` silences every rule on that line; ``ignore[...]``
takes a comma-separated rule-id list.  Suppressions are extracted with
:mod:`tokenize` so strings that merely *contain* the marker do not
count.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

#: Top-level ``repro`` subpackages whose code runs in the simulated
#: cycle domain and must therefore be deterministic and integer-timed.
CYCLE_DOMAIN_PACKAGES = frozenset(
    {
        "hw",
        "core",
        "rvm",
        "backends",
        "timewarp",
        "obs",
        "faults",
        "replay",
        "analytics",
    }
)

#: Matches a suppression comment; group 1 is the optional rule list.
_SUPPRESS_RE = re.compile(r"lvm-san\s*:\s*ignore(?:\[([A-Za-z0-9_,\s]*)\])?")

#: Sentinel stored in the suppression map for a bare ``ignore``.
SUPPRESS_ALL = "*"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id`` / ``title`` / ``rationale`` and
    implement :meth:`check`.  ``rationale`` is user documentation — it
    is what ``--list-rules`` prints and what DESIGN.md quotes.
    """

    rule_id: str = "LVM000"
    title: str = ""
    rationale: str = ""

    def check(self, ctx: "FileContext") -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, ctx: "FileContext", node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
        )


@dataclass
class FileContext:
    """Everything a rule may look at for one file."""

    path: str
    #: path relative to the package root, e.g. ``repro/hw/bus.py``
    module_path: str
    source: str
    tree: ast.Module
    #: line -> rule ids suppressed there (or :data:`SUPPRESS_ALL`)
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: (line, rule-id-or-*) suppressions that matched a diagnostic —
    #: anything left unused is a dead suppression (LVM007)
    used_suppressions: Set[Tuple[int, str]] = field(default_factory=set)

    @property
    def package_parts(self) -> Tuple[str, ...]:
        return tuple(self.module_path.split("/"))

    @property
    def in_cycle_domain(self) -> bool:
        parts = self.package_parts
        return (
            len(parts) >= 2
            and parts[0] == "repro"
            and parts[1] in CYCLE_DOMAIN_PACKAGES
        )

    @property
    def module_name(self) -> str:
        """Dotted module name, e.g. ``repro.hw.bus``."""
        parts = list(self.package_parts)
        if parts and parts[-1].endswith(".py"):
            parts[-1] = parts[-1][: -len(".py")]
        if parts and parts[-1] == "__init__":
            parts.pop()
        return ".".join(parts)

    def suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line)
        if not rules:
            return False
        if finding.rule_id in rules:
            self.used_suppressions.add((finding.line, finding.rule_id))
            return True
        if SUPPRESS_ALL in rules:
            self.used_suppressions.add((finding.line, SUPPRESS_ALL))
            return True
        return False


def _parse_suppressions(source: str) -> Dict[int, Set[str]]:
    suppressions: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            listed = match.group(1)
            if listed is None:
                rules = {SUPPRESS_ALL}
            else:
                rules = {part.strip() for part in listed.split(",") if part.strip()}
                if not rules:
                    rules = {SUPPRESS_ALL}
            suppressions.setdefault(tok.start[0], set()).update(rules)
    except tokenize.TokenError:
        # The AST parse will report the real problem.
        pass
    return suppressions


def make_context(source: str, module_path: str, path: str | None = None) -> FileContext:
    """Parse ``source`` into a :class:`FileContext` (raises SyntaxError)."""
    tree = ast.parse(source, filename=path or module_path)
    return FileContext(
        path=path or module_path,
        module_path=module_path,
        source=source,
        tree=tree,
        suppressions=_parse_suppressions(source),
    )


#: Rule id of the engine-level dead-suppression check.
DEAD_SUPPRESSION_ID = "LVM007"

DEAD_SUPPRESSION_TITLE = "suppression comments must still match a diagnostic"
DEAD_SUPPRESSION_RATIONALE = (
    "an `# lvm-san: ignore[...]` whose diagnostic no longer fires is a "
    "trap: the code it excused has changed, but the suppression will "
    "silently swallow the next, different violation on that line.  Only "
    "checked when the full rule set runs (under --select a suppression "
    "for an unselected rule is not dead, just unexercised)."
)


def dead_suppression_findings(ctx: FileContext) -> List[Finding]:
    """LVM007: suppressions that matched nothing this run.

    Call only after every rule (including deep rules, when enabled) has
    been filtered through :meth:`FileContext.suppressed`, and only when
    the *full* rule set ran — under ``--select`` an unmatched
    suppression proves nothing.
    """
    findings: List[Finding] = []
    for line, rules in sorted(ctx.suppressions.items()):
        for rule_id in sorted(rules):
            if (line, rule_id) in ctx.used_suppressions:
                continue
            label = "" if rule_id == SUPPRESS_ALL else f"[{rule_id}]"
            findings.append(
                Finding(
                    path=ctx.path,
                    line=line,
                    col=1,
                    rule_id=DEAD_SUPPRESSION_ID,
                    message=(
                        f"dead suppression: `lvm-san: ignore{label}` matches "
                        "no diagnostic on this line — remove it"
                    ),
                )
            )
    return findings


def run_rules(
    ctx: FileContext, rules: Sequence[Rule], check_suppressions: bool = False
) -> List[Finding]:
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check(ctx):
            if not ctx.suppressed(finding):
                findings.append(finding)
    if check_suppressions:
        findings.extend(dead_suppression_findings(ctx))
    return sorted(findings)


def lint_source(
    source: str, module_path: str, rules: Sequence[Rule], path: str | None = None
) -> List[Finding]:
    """Lint one in-memory file.  The fixture-test entry point."""
    return run_rules(make_context(source, module_path, path), rules)


def module_path_for(path: Path) -> str:
    """Best-effort package-relative path (``repro/hw/bus.py``)."""
    parts = path.as_posix().split("/")
    for anchor in ("repro",):
        if anchor in parts:
            return "/".join(parts[parts.index(anchor) :])
    return path.name


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    check_suppressions: bool = False,
) -> List[Finding]:
    """Lint files/trees on disk; parse failures become findings.

    ``check_suppressions`` enables the LVM007 dead-suppression pass;
    it is only sound when *every* rule a suppression could name runs,
    so the CLI enables it for ``--deep`` runs (flat + deep rules) and
    leaves it off for flat or ``--select`` runs.
    """
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text()
        try:
            ctx = make_context(source, module_path_for(file_path), str(file_path))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    path=str(file_path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    rule_id="LVM000",
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        findings.extend(run_rules(ctx, rules, check_suppressions=check_suppressions))
    return sorted(findings)
