"""CLI front ends: ``python -m repro lint`` and ``python -m repro race``.

``lint`` runs the rule plugins over a source tree (default: the
installed ``repro`` package) and exits 1 on findings; ``race`` replays
canned :mod:`repro.obs.workloads` under the log-race detector and
exits 1 if any unsynchronized cross-CPU same-page write is observed.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.sanitize import engine
from repro.sanitize.rules import all_rules


def lint_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Check the repo's simulator invariants (lvm-san).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id, title, and rationale, then exit",
    )
    parser.add_argument(
        "--regen-sites",
        action="store_true",
        help="regenerate repro/faults/sites.py from the code, then exit",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help=(
            "also run the interprocedural analyses (LVM101-104: durability "
            "ordering, cycle-domain units, span balance, site reachability) "
            "and the LVM007 dead-suppression check"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (json and sarif require --deep)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "deep-lint baseline to subtract (default: .lvm-deep-baseline.json "
            "found upward from the cwd); stale entries fail the run"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline from current --deep findings, then exit",
    )
    parser.add_argument(
        "--facts",
        action="store_true",
        help="with --deep: also print the facts the analyses proved",
    )
    args = parser.parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.title}")
            print(f"        {rule.rationale}")
        print(f"{engine.DEAD_SUPPRESSION_ID}  {engine.DEAD_SUPPRESSION_TITLE}")
        print(f"        {engine.DEAD_SUPPRESSION_RATIONALE}")
        return 0
    if args.format != "text" and not args.deep:
        parser.error(f"--format {args.format} requires --deep")
    if args.write_baseline and not args.deep:
        parser.error("--write-baseline requires --deep")
    if args.regen_sites:
        from repro.sanitize import sitegen

        out_path = sitegen.generate()
        print(f"wrote {out_path}")
        return 0

    if args.select:
        wanted = {part.strip() for part in args.select.split(",") if part.strip()}
        unknown = wanted - {rule.rule_id for rule in rules}
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        rules = [rule for rule in rules if rule.rule_id in wanted]

    paths: List[Path] = list(args.paths)
    if not paths:
        from repro.sanitize.sitegen import default_root

        paths = [default_root()]
    for path in paths:
        if not path.exists():
            parser.error(f"no such path: {path}")

    if args.deep:
        return _deep_lint(parser, args, paths, rules)

    findings = engine.lint_paths(paths, rules)
    for finding in findings:
        print(finding)
    if findings:
        print(f"lvm-san: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


def _deep_lint(
    parser: argparse.ArgumentParser,
    args: argparse.Namespace,
    paths: List[Path],
    rules: Sequence[engine.Rule],
) -> int:
    from repro.sanitize.deep import baseline as baseline_mod
    from repro.sanitize.deep import report as report_mod
    from repro.sanitize.deep.runner import run_deep

    # Dead-suppression checking is only sound over the full rule set.
    full_set = args.select is None
    result = run_deep(paths, rules=rules, check_suppressions=full_set)

    if args.write_baseline:
        target = args.baseline or baseline_mod.default_path()
        baseline_mod.write(target, result.findings)
        print(f"wrote {target} ({len(result.findings)} entr(y|ies))")
        return 0

    baseline_path = args.baseline or baseline_mod.default_path()
    try:
        entries = baseline_mod.load(baseline_path)
    except baseline_mod.BaselineError as exc:
        parser.error(str(exc))
    findings, stale = baseline_mod.apply(result.findings, entries)

    if args.format == "json":
        text = report_mod.to_json(findings, result.facts)
    elif args.format == "sarif":
        text = report_mod.to_sarif(findings, result.facts)
    else:
        lines = [str(finding) for finding in findings]
        if args.facts:
            lines.extend(f"fact: {fact}" for fact in result.facts)
        text = "".join(line + "\n" for line in lines)

    if args.out is not None:
        args.out.write_text(text)
    else:
        sys.stdout.write(text)

    status = 0
    if findings:
        print(f"lvm-san: {len(findings)} finding(s)", file=sys.stderr)
        status = 1
    if stale:
        for entry in stale:
            print(
                f"lvm-san: stale baseline entry {entry.rule_id} {entry.path!r} "
                f"({entry.contains[:60]!r}) matches no finding — baseline "
                "drift; fix or regenerate with --write-baseline",
                file=sys.stderr,
            )
        status = 1
    if status == 0:
        print(
            f"lvm-san --deep: clean ({result.files} files, "
            f"{result.functions} functions, {len(result.facts)} facts proved)",
            file=sys.stderr,
        )
    return status


def race_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro race",
        description="Replay canned workloads under the log-race sanitizer.",
    )
    parser.add_argument(
        "workloads",
        nargs="*",
        default=["copy", "timewarp"],
        help="canned repro.obs workload names (default: copy timewarp)",
    )
    args = parser.parse_args(argv)

    from repro.obs.workloads import run_workload
    from repro.sanitize import race

    failures = 0
    for name in args.workloads:
        detector = race.LogRaceDetector()
        with race.installed(detector):
            run_workload(name)
        print(f"{name}: {detector.summary()}")
        if detector.races_seen:
            failures += 1
    return 1 if failures else 0
