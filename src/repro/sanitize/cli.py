"""CLI front ends: ``python -m repro lint`` and ``python -m repro race``.

``lint`` runs the rule plugins over a source tree (default: the
installed ``repro`` package) and exits 1 on findings; ``race`` replays
canned :mod:`repro.obs.workloads` under the log-race detector and
exits 1 if any unsynchronized cross-CPU same-page write is observed.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.sanitize import engine
from repro.sanitize.rules import all_rules


def lint_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Check the repo's simulator invariants (lvm-san).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id, title, and rationale, then exit",
    )
    parser.add_argument(
        "--regen-sites",
        action="store_true",
        help="regenerate repro/faults/sites.py from the code, then exit",
    )
    args = parser.parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.title}")
            print(f"        {rule.rationale}")
        return 0
    if args.regen_sites:
        from repro.sanitize import sitegen

        out_path = sitegen.generate()
        print(f"wrote {out_path}")
        return 0

    if args.select:
        wanted = {part.strip() for part in args.select.split(",") if part.strip()}
        unknown = wanted - {rule.rule_id for rule in rules}
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        rules = [rule for rule in rules if rule.rule_id in wanted]

    paths: List[Path] = list(args.paths)
    if not paths:
        from repro.sanitize.sitegen import default_root

        paths = [default_root()]
    for path in paths:
        if not path.exists():
            parser.error(f"no such path: {path}")

    findings = engine.lint_paths(paths, rules)
    for finding in findings:
        print(finding)
    if findings:
        print(f"lvm-san: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


def race_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro race",
        description="Replay canned workloads under the log-race sanitizer.",
    )
    parser.add_argument(
        "workloads",
        nargs="*",
        default=["copy", "timewarp"],
        help="canned repro.obs workload names (default: copy timewarp)",
    )
    args = parser.parse_args(argv)

    from repro.obs.workloads import run_workload
    from repro.sanitize import race

    failures = 0
    for name in args.workloads:
        detector = race.LogRaceDetector()
        with race.installed(detector):
            run_workload(name)
        print(f"{name}: {detector.summary()}")
        if detector.races_seen:
            failures += 1
    return 1 if failures else 0
