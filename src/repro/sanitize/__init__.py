"""lvm-san: invariant lint + cycle-domain race sanitizer.

Two tools over one idea — the repro's headline claims rest on
invariants that should be machine-checked, not re-discovered per PR:

* :mod:`repro.sanitize.engine` / :mod:`repro.sanitize.rules` — an
  AST-based lint framework (``python -m repro lint``) whose rule
  plugins enforce repo-specific invariants: no wall-clock or unseeded
  randomness in cycle-domain modules, integer-only cycle arithmetic,
  the one-``_ACTIVE``-check instrumentation-gate pattern, fault-site
  literals resolving against the generated registry
  (:mod:`repro.faults.sites`), and a reachable generic fallback for
  every fused fast path.  Per-rule suppression:
  ``# lvm-san: ignore[LVM003]``.
* :mod:`repro.sanitize.race` — a TSan-style vector-clock
  happens-before detector for unsynchronized same-page logged writes
  from different CPUs (``python -m repro race <workload>``), which
  would make bus/log-record order nondeterministic.  Hot-path hooks
  follow the exact :mod:`repro.faults.plan` gate pattern, so the
  disabled cost is one ``is None`` check.

This ``__init__`` is deliberately lazy: hardware hot paths import
:mod:`repro.sanitize.race` directly, and nothing here may drag the
simulator (or the linter) into their import graph.
"""

from __future__ import annotations

_LAZY = {
    "Finding": "engine",
    "Rule": "engine",
    "lint_paths": "engine",
    "lint_source": "engine",
    "all_rules": "rules",
    "LogRaceDetector": "race",
    "RaceReport": "race",
    "VectorClock": "vclock",
}

__all__ = sorted(_LAZY)


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f"{__name__}.{module}"), name)
