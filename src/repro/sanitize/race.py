"""TSan-style happens-before detector for logged-write races.

The Logged Virtual Memory design only yields a deterministic,
replayable log if every pair of writes to the same logged page is
ordered by *explicit* synchronization — the bus serializes the cycle in
which each write lands, but if two CPUs race to the same page the
serialization order is an accident of scheduler interleaving, and the
log-record order (hence recovery) stops being a function of the
workload.  This module flags exactly those accidents.

Mechanics (classic vector-clock happens-before, per page rather than
per byte):

* each CPU carries a :class:`~repro.sanitize.vclock.VectorClock`;
  every logged write run ticks the writer's own component;
* each touched page keeps a shadow cell per CPU: the epoch (plus cycle
  and address, for reporting) of that CPU's last write to the page;
* a write races iff some *other* CPU's shadow epoch on the page is not
  covered by the writer's clock — no release/acquire chain ordered the
  two writes;
* happens-before edges come from the machine model: a timewarp message
  send/receive is a release/acquire pair, and a global quiesce (or
  ``suspend_all_until``) joins every clock.

Installation follows the :mod:`repro.faults.plan` gate pattern exactly:
hot paths read the module global ``_ACTIVE`` once and pay a single
``is None`` check when the sanitizer is off, so a disabled run is
cycle- and log-record-identical to an unhooked build (guarded by
``tests/sanitize/test_race.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.sanitize.vclock import VectorClock


@dataclass(frozen=True)
class RaceReport:
    """One unsynchronized same-page write pair, oldest conflict first."""

    page: int
    #: (cpu_index, cycle, paddr) of the earlier, un-ordered write
    prev_cpu: int
    prev_cycle: int
    prev_paddr: int
    #: (cpu_index, cycle, paddr) of the racing write
    cpu: int
    cycle: int
    paddr: int

    def __str__(self) -> str:
        return (
            f"log race on page {self.page:#x}: cpu{self.cpu} wrote "
            f"{self.paddr:#x} at cycle {self.cycle} with no "
            f"happens-before edge from cpu{self.prev_cpu}'s write of "
            f"{self.prev_paddr:#x} at cycle {self.prev_cycle}"
        )


class LogRaceDetector:
    """Vector-clock race detector over logged page writes.

    ``page_size`` defaults to the machine's
    :data:`repro.hw.params.PAGE_SIZE`; it is resolved lazily at
    construction so importing this module never drags in the hardware
    package (the hardware package imports *us*).
    """

    def __init__(self, page_size: int | None = None, max_reports: int = 64) -> None:
        if page_size is None:
            from repro.hw.params import PAGE_SIZE

            page_size = PAGE_SIZE
        if page_size & (page_size - 1):
            raise ValueError(f"page_size must be a power of two, got {page_size}")
        self.page_size = page_size
        self._page_shift = page_size.bit_length() - 1
        self.max_reports = max_reports
        #: per-CPU vector clocks
        self._clocks: Dict[int, VectorClock] = {}
        #: running join of every global barrier; a CPU whose first
        #: write happens after a barrier starts from here, so the
        #: barrier orders it after everything the barrier drained.
        self._global: VectorClock = VectorClock()
        #: page -> cpu -> (epoch, cycle, paddr) of that CPU's last write
        self._shadow: Dict[int, Dict[int, Tuple[int, int, int]]] = {}
        #: in-flight release/acquire tokens (message identity -> clock)
        self._messages: Dict[int, VectorClock] = {}
        self.reports: List[RaceReport] = []
        #: total race pairs seen, including ones dropped past max_reports
        self.races_seen = 0
        self.writes_checked = 0

    def _clock(self, cpu: int) -> VectorClock:
        clock = self._clocks.get(cpu)
        if clock is None:
            clock = self._clocks[cpu] = self._global.copy()
        return clock

    # ------------------------------------------------------------------
    # event hooks (called from hw/core when a detector is installed)

    def logged_run(self, cpu: int, paddr: int, nbytes: int, cycle: int) -> None:
        """A CPU wrote ``nbytes`` starting at ``paddr`` on a logged page."""
        if nbytes <= 0:
            return
        self.writes_checked += 1
        clock = self._clock(cpu)
        epoch = clock.tick(cpu)
        first_page = paddr >> self._page_shift
        last_page = (paddr + nbytes - 1) >> self._page_shift
        for page in range(first_page, last_page + 1):
            cells = self._shadow.get(page)
            if cells is None:
                cells = self._shadow[page] = {}
            else:
                for prev_cpu, (prev_epoch, prev_cycle, prev_paddr) in cells.items():
                    if prev_cpu == cpu or clock.covers(prev_cpu, prev_epoch):
                        continue
                    self.races_seen += 1
                    if len(self.reports) < self.max_reports:
                        self.reports.append(
                            RaceReport(
                                page=page,
                                prev_cpu=prev_cpu,
                                prev_cycle=prev_cycle,
                                prev_paddr=prev_paddr,
                                cpu=cpu,
                                cycle=cycle,
                                paddr=paddr,
                            )
                        )
            cells[cpu] = (epoch, cycle, paddr)

    def msg_send(self, cpu: int, token: int) -> None:
        """Release edge: snapshot the sender's clock under ``token``."""
        clock = self._clock(cpu)
        clock.tick(cpu)
        self._messages[token] = clock.copy()

    def msg_recv(self, cpu: int, token: int) -> None:
        """Acquire edge: join the matching send's clock, if any."""
        sent = self._messages.pop(token, None)
        if sent is not None:
            self._clock(cpu).join(sent)

    def global_sync(self) -> None:
        """A machine-wide barrier: every clock joins every other."""
        merged = self._global
        for clock in self._clocks.values():
            merged.join(clock)
        for cpu in self._clocks:
            self._clocks[cpu] = merged.copy()

    # ------------------------------------------------------------------

    def summary(self) -> str:
        head = (
            f"lvm-san race: {self.races_seen} race(s) in "
            f"{self.writes_checked} logged write run(s)"
        )
        lines = [head] + [f"  {report}" for report in self.reports]
        if self.races_seen > len(self.reports):
            lines.append(f"  ... {self.races_seen - len(self.reports)} more")
        return "\n".join(lines)


#: The installed detector, or None.  Hot paths read this exactly once
#: per event and skip all work when it is None (same gate pattern as
#: repro.faults.plan._ACTIVE / repro.obs.core._ACTIVE).
_ACTIVE: Optional[LogRaceDetector] = None


def active() -> Optional[LogRaceDetector]:
    return _ACTIVE


def install(detector: LogRaceDetector) -> LogRaceDetector:
    """Install ``detector`` as the process-wide race sanitizer."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a LogRaceDetector is already installed")
    _ACTIVE = detector
    return detector


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def installed(detector: LogRaceDetector) -> Iterator[LogRaceDetector]:
    install(detector)
    try:
        yield detector
    finally:
        uninstall()
