"""Golden tests for the generated fault-site registry.

``repro/faults/sites.py`` is generated from the code by
``python -m repro lint --regen-sites``; these tests pin the contract
from both sides:

* the committed registry is byte-identical to a fresh sweep of the
  source tree (no drift, no orphans, no hand edits);
* every registered site is exercised — hit at least once — by a
  deterministic workload in this suite, and referenced literally by at
  least one test file, so a site can never rot into a string that no
  crash test can reach.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.faults import plan as faultplan
from repro.faults.plan import FaultPlan
from repro.faults.sites import ALL_SITES, SITES
from repro.sanitize.sitegen import render, sweep_sites

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"
TESTS_DIR = REPO_ROOT / "tests"

#: Sites hit by one trigger-less count pass over the canonical crash
#: sweep script on the RLVM backend (RVM covers a strict subset: it
#: uses no hardware logger, so fifo.push / logger.dma never fire).
RLVM_SWEEP_SITES = (
    "backend.barrier",
    "backend.flush",
    "fifo.push",
    "logger.dma",
    "ramdisk.write",
    "rvm.abort",
    "rvm.commit.begin",
    "rvm.commit.buffered",
    "rvm.commit.durable",
    "rvm.commit.log",
    "rvm.flush",
    "rvm.truncate.applied",
    "rvm.truncate.apply",
    "rvm.truncate.begin",
    "wal.append",
    "wal.append_group",
    "wal.reset",
)


class TestRegistryMatchesCode:
    def test_committed_registry_is_regeneration_identical(self):
        committed = (SRC_REPRO / "faults" / "sites.py").read_text()
        regenerated = render(sweep_sites(SRC_REPRO))
        assert committed == regenerated, (
            "repro/faults/sites.py is stale; run "
            "`python -m repro lint --regen-sites`"
        )

    def test_registry_files_exist(self):
        for site, files in SITES.items():
            for rel in files:
                assert (REPO_ROOT / "src" / rel).is_file(), (site, rel)

    def test_all_sites_mirror(self):
        assert ALL_SITES == frozenset(SITES)

    def test_cross_library_duplicates_are_the_rvm_pair(self):
        # Sites declared in more than one file must be exactly the
        # shared rvm/rlvm durability protocol — anything else is an
        # accidental name collision.
        for site, files in SITES.items():
            if len(files) > 1:
                assert files == ("repro/rvm/rlvm.py", "repro/rvm/rvm.py"), (
                    site,
                    files,
                )


class TestEverySiteIsExercised:
    @pytest.fixture(scope="class")
    def rlvm_counts(self):
        from repro.faults.sweep import DEFAULT_SCRIPT, run_script
        from repro.rvm.rlvm import RLVM

        plan = FaultPlan(seed=0)
        run_script(RLVM, DEFAULT_SCRIPT, plan)
        return plan.counts

    @pytest.mark.parametrize("site", RLVM_SWEEP_SITES)
    def test_sweep_script_reaches(self, site, rlvm_counts):
        assert rlvm_counts[site] >= 1, site

    def test_timewarp_rollback_restore_reached(self):
        from repro.obs.workloads import run_timewarp

        plan = FaultPlan(seed=0)
        with faultplan.installed(plan):
            run_timewarp()
        assert plan.counts["timewarp.rollback.restore"] >= 1

    def test_logger_overload_reached(self):
        from repro.obs.workloads import run_copy

        plan = FaultPlan(seed=0)
        with faultplan.installed(plan):
            run_copy()
        assert plan.counts["logger.overload"] >= 1

    def test_replay_sites_reached(self, machine, proc):
        from repro.replay.engine import ReplayEngine

        from conftest import make_logged_region

        region, _log, va = make_logged_region(machine)
        engine = ReplayEngine(region, checkpoint_interval=4)
        plan = FaultPlan(seed=0)
        with faultplan.installed(plan):
            for i in range(8):
                proc.write(va + 4 * i, i)
            engine.state_at(len(engine))
        assert plan.counts["replay.checkpoint"] >= 1
        assert plan.counts["replay.restore"] == 1

    def test_analytics_rebuild_reached(self, machine, proc):
        from repro.analytics.stream import rebuild_tap

        from conftest import make_logged_region

        _region, log, va = make_logged_region(machine)
        for i in range(8):
            proc.write(va + 4 * i, i)
        machine.quiesce()
        plan = FaultPlan(seed=0)
        with faultplan.installed(plan):
            tap = rebuild_tap(log, cycle=machine.clock.now)
        assert plan.counts["analytics.rebuild"] == 1
        assert tap.stats.record_count == 8

    def test_fifo_overflow_reached(self):
        from repro.hw.fifo import HardwareFifo, PushResult

        plan = FaultPlan(seed=0)
        with faultplan.installed(plan):
            fifo = HardwareFifo(capacity=1)
            assert fifo.push(0, "a") is PushResult.OK
            assert fifo.push(0, "b") is PushResult.OVERFLOW
        assert plan.counts["fifo.overflow"] == 1

    def test_exercise_lists_cover_the_whole_registry(self):
        exercised = set(RLVM_SWEEP_SITES) | {
            "timewarp.rollback.restore",
            "logger.overload",
            "fifo.overflow",
            "replay.checkpoint",
            "replay.restore",
            "analytics.rebuild",
        }
        assert exercised == set(ALL_SITES), (
            "registry and exercise tests drifted apart: "
            f"unexercised={sorted(set(ALL_SITES) - exercised)} "
            f"stale={sorted(exercised - set(ALL_SITES))}"
        )

    def test_each_site_appears_literally_in_some_test(self):
        sources = [p.read_text() for p in TESTS_DIR.rglob("test_*.py")]
        for site in sorted(ALL_SITES):
            assert any(f'"{site}"' in text or f"'{site}'" in text for text in sources), (
                f"no test references fault site {site!r}"
            )
