"""``repr(FaultPlan)`` must be eval()-replayable (plan.py's contract).

A red crash-sweep CI run prints plan reprs as its replay artifact, so
every constructor field has to survive the round trip for every
trigger kind and crash mode.
"""

from __future__ import annotations

import inspect

import pytest

from repro.faults.plan import (
    SITE_DISK_WRITE,
    SITE_FIFO_PUSH,
    CrashSpec,
    FaultPlan,
)

#: eval namespace: exactly what "this module's names" promises
NAMESPACE = {"FaultPlan": FaultPlan, "CrashSpec": CrashSpec}

MODES = ("before", "torn", "after", "drop")


def roundtrip(plan: FaultPlan) -> FaultPlan:
    return eval(repr(plan), {"__builtins__": {}}, dict(NAMESPACE))


def assert_equivalent(plan: FaultPlan, clone: FaultPlan) -> None:
    assert clone.seed == plan.seed
    assert clone.crash == plan.crash
    assert clone.crash_at_cycle == plan.crash_at_cycle
    assert clone.reorder_window == plan.reorder_window


class TestReprRoundTrip:
    def test_default_plan(self):
        assert_equivalent(FaultPlan(), roundtrip(FaultPlan()))

    @pytest.mark.parametrize("mode", MODES)
    def test_site_trigger_all_modes(self, mode):
        plan = FaultPlan.at_site("rvm.commit.log", nth=3, mode=mode, seed=7)
        assert_equivalent(plan, roundtrip(plan))

    @pytest.mark.parametrize("mode", MODES)
    def test_disk_write_trigger_all_modes(self, mode):
        plan = FaultPlan.at_disk_write(nth=2, mode=mode, seed=11)
        clone = roundtrip(plan)
        assert_equivalent(plan, clone)
        assert clone.crash.site == SITE_DISK_WRITE

    @pytest.mark.parametrize("mode", MODES)
    def test_fifo_push_trigger_all_modes(self, mode):
        plan = FaultPlan.at_fifo_push(nth=5, mode=mode)
        clone = roundtrip(plan)
        assert_equivalent(plan, clone)
        assert clone.crash.site == SITE_FIFO_PUSH

    def test_cycle_trigger(self):
        plan = FaultPlan.at_cycle(123456, seed=3)
        assert_equivalent(plan, roundtrip(plan))

    def test_reorder_window_survives(self):
        plan = FaultPlan(seed=5, reorder_window=4)
        assert_equivalent(plan, roundtrip(plan))

    def test_combined_trigger_and_window(self):
        plan = FaultPlan(
            seed=9,
            crash=CrashSpec("wal.append", 4, "torn"),
            crash_at_cycle=99,
            reorder_window=2,
        )
        assert_equivalent(plan, roundtrip(plan))

    def test_replay_behaves_identically(self):
        # Same plan, same deterministic torn-write choices: the clone's
        # RNG must be seeded identically, not just the fields copied.
        plan = FaultPlan(seed=21)
        clone = roundtrip(plan)
        assert [plan._rng.random() for _ in range(4)] == [
            clone._rng.random() for _ in range(4)
        ]

    def test_every_ctor_field_is_in_the_repr(self):
        # Future-proofing: adding a FaultPlan ctor parameter without
        # teaching __repr__ about it must fail here, not in a dead
        # replay artifact during an incident.
        params = [
            name
            for name in inspect.signature(FaultPlan.__init__).parameters
            if name != "self"
        ]
        text = repr(FaultPlan())
        for name in params:
            assert f"{name}=" in text, f"__repr__ drops {name!r}"
