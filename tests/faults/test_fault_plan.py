"""Unit tests for the FaultPlan machinery, plus the mutation guards:
deliberately broken recoveries that the consistency checker must catch.
"""

import pytest

from repro.errors import ConfigError
from repro.faults import CrashPoint, CrashSpec, FaultPlan, installed
from repro.faults import plan as faultplan
from repro.faults.checker import (
    DURABLE,
    CrashCheckFailure,
    CrashConsistencyChecker,
    RecoveredState,
    recover,
)
from repro.faults.sweep import DEFAULT_SCRIPT, check_run, run_script
from repro.rvm.ramdisk import RamDisk
from repro.rvm.rlvm import RLVM
from repro.rvm.rvm import RVM


class TestTriggers:
    def test_before_mode_leaves_nothing_durable(self, machine, proc):
        disk = RamDisk(1024)
        with installed(FaultPlan.at_disk_write(nth=2)):
            disk.write(proc.cpu, 0, b"AAAA")
            with pytest.raises(CrashPoint) as exc:
                disk.write(proc.cpu, 8, b"BBBB")
        assert disk.peek(0, 4) == b"AAAA"
        assert disk.peek(8, 4) == bytes(4)
        assert exc.value.site == "ramdisk.write"
        assert exc.value.seq == 2

    def test_after_mode_makes_the_write_durable_first(self, machine, proc):
        disk = RamDisk(1024)
        with installed(FaultPlan.at_disk_write(nth=1, mode="after")):
            with pytest.raises(CrashPoint):
                disk.write(proc.cpu, 0, b"AAAA")
        assert disk.peek(0, 4) == b"AAAA"

    def test_torn_mode_leaves_a_strict_prefix(self, machine, proc):
        def run(seed):
            disk = RamDisk(1024)
            plan = FaultPlan.at_disk_write(nth=1, mode="torn", seed=seed)
            with installed(plan):
                with pytest.raises(CrashPoint):
                    disk.write(proc.cpu, 0, b"ABCDEFGH")
            return disk.peek(0, 8)

        got = run(7)
        assert got == run(7), "torn cut must be seed-deterministic"
        cuts = [k for k in range(1, 8) if got == b"ABCDEFGH"[:k] + bytes(8 - k)]
        assert cuts, f"not a strict prefix: {got!r}"

    def test_cycle_trigger_fires_once_time_passes(self, machine, proc):
        disk = RamDisk(1024)
        with installed(FaultPlan.at_cycle(proc.cpu.now + 1)):
            # Hooks observe the cycle *before* the write is charged, so
            # the first write (at cycle 0) survives and becomes durable.
            disk.write(proc.cpu, 0, b"AAAA")
            with pytest.raises(CrashPoint):
                disk.write(proc.cpu, 8, b"BBBB")
        assert disk.peek(0, 4) == b"AAAA"
        assert disk.peek(8, 4) == bytes(4)

    def test_counts_and_fired_latch(self, machine, proc):
        disk = RamDisk(1024)
        plan = FaultPlan()  # no trigger: pure counting
        with installed(plan):
            for i in range(5):
                disk.write(proc.cpu, 16 * i, b"xx")
        assert plan.counts[faultplan.SITE_DISK_WRITE] == 5
        assert not plan.fired

    def test_double_install_rejected(self):
        with installed(FaultPlan()):
            with pytest.raises(ConfigError):
                faultplan.install(FaultPlan())

    def test_module_hit_is_noop_without_plan(self):
        faultplan.hit("any.site", cycle=123)  # must not raise

    def test_repr_replays_the_plan(self):
        plan = FaultPlan(seed=9, crash=CrashSpec("wal.append", 3, "torn"))
        clone = eval(repr(plan), {"FaultPlan": FaultPlan, "CrashSpec": CrashSpec})
        assert clone.seed == plan.seed
        assert clone.crash == plan.crash
        assert clone.reorder_window == plan.reorder_window

    def test_snapshot_rides_the_exception(self, machine, proc):
        disk = RamDisk(1024)
        plan = FaultPlan.at_disk_write(nth=1)
        plan.snapshot_source(lambda: "durable-state")
        with installed(plan):
            with pytest.raises(CrashPoint) as exc:
                disk.write(proc.cpu, 0, b"AAAA")
        assert exc.value.snapshot == "durable-state"
        assert "CrashSpec" in exc.value.plan_repr


class TestReorderWindow:
    def _run(self, proc, seed):
        disk = RamDisk(64)
        plan = FaultPlan(
            seed=seed, crash=CrashSpec("ramdisk.write", 4), reorder_window=2
        )
        with installed(plan):
            disk.write(proc.cpu, 0, b"AAAA")
            disk.write(proc.cpu, 8, b"BBBB")
            disk.write(proc.cpu, 16, b"CCCC")
            with pytest.raises(CrashPoint):
                disk.write(proc.cpu, 24, b"DDDD")
        return disk.peek(0, 32)

    def test_window_is_deterministic_and_atomic(self, machine, proc):
        got = self._run(proc, 11)
        assert got == self._run(proc, 11)
        # Write 1 left the two-deep window before the crash: durable.
        assert got[0:4] == b"AAAA"
        # Windowed writes are lost or kept whole, never shredded.
        assert got[8:12] in (b"BBBB", bytes(4))
        assert got[16:20] in (b"CCCC", bytes(4))
        # The crashing write itself (mode "before") never lands.
        assert got[24:28] == bytes(4)

    def test_reordering_actually_happens(self, machine, proc):
        outcomes = {self._run(proc, seed) for seed in range(8)}
        assert len(outcomes) > 1, "no seed ever lost a windowed write"


class TestMutationGuards:
    """Deliberately broken recoveries must be caught by the checker."""

    def _crashed_rvm_run(self):
        plan = FaultPlan.at_site("rvm.commit.durable", nth=2)
        result = run_script(RVM, DEFAULT_SCRIPT, plan)
        assert result.crash is not None
        return result

    def test_honest_recovery_passes(self):
        result = self._crashed_rvm_run()
        check_run(result)  # must not raise

    def test_flipped_byte_is_caught(self):
        result = self._crashed_rvm_run()
        recovered = recover(result.crash.snapshot)
        name, image = next(iter(recovered.images.items()))
        broken = dict(recovered.images)
        broken[name] = image[:3] + bytes([image[3] ^ 0xFF]) + image[4:]
        bad = RecoveredState(
            images=broken,
            committed_tids=recovered.committed_tids,
            valid_log_bytes=recovered.valid_log_bytes,
        )
        with pytest.raises(CrashCheckFailure, match="diverges"):
            CrashConsistencyChecker(result.oracle).check(bad)

    def test_resurrected_unknown_tid_is_caught(self):
        result = self._crashed_rvm_run()
        recovered = recover(result.crash.snapshot)
        bad = RecoveredState(
            images=recovered.images,
            committed_tids=frozenset(recovered.committed_tids | {9999}),
            valid_log_bytes=recovered.valid_log_bytes,
        )
        with pytest.raises(CrashCheckFailure, match="unknown tids"):
            CrashConsistencyChecker(result.oracle).check(bad)

    def test_lost_durable_commit_is_caught(self):
        plan = FaultPlan.at_site("rvm.commit.durable", nth=3)
        result = run_script(RVM, DEFAULT_SCRIPT, plan)
        recovered = recover(result.crash.snapshot)
        durable = {
            t for t, m in result.oracle.txns.items() if m.status == DURABLE
        }
        victim = sorted(durable & set(recovered.committed_tids))[0]
        bad = RecoveredState(
            images=recovered.images,
            committed_tids=frozenset(recovered.committed_tids - {victim}),
            valid_log_bytes=recovered.valid_log_bytes,
        )
        with pytest.raises(CrashCheckFailure):
            CrashConsistencyChecker(result.oracle).check(bad)

    def test_forced_fifo_drop_corrupts_rlvm_and_is_caught(self):
        """The deliberately-broken durability stack: drop one hardware
        log record (txn 3's write of word 1, which nothing later
        overwrites) as an overflow would.  RLVM then commits a partial
        transaction — real corruption the checker must flag as a
        divergence from the oracle."""
        plan = FaultPlan.at_fifo_push(nth=10, mode="drop")
        result = run_script(RLVM, DEFAULT_SCRIPT, plan)
        assert result.crash is None  # a drop is silent, not a crash
        assert result.plan.fired
        with pytest.raises(CrashCheckFailure, match="diverges"):
            check_run(result)

    def test_dropped_begin_marker_is_self_detected(self):
        """Losing a transaction's control-word marker record is caught
        by RLVM itself at commit: records without a begin marker."""
        from repro.errors import TransactionError

        plan = FaultPlan.at_fifo_push(nth=1, mode="drop")
        with pytest.raises(TransactionError, match="begin marker"):
            run_script(RLVM, DEFAULT_SCRIPT, plan)
