"""The exhaustive crash sweep over the durability stack.

Acceptance shape: the count-the-sites pass enumerates every injection
point the workload reaches, then one run per ``(site, nth, mode)``
crashes there and the recovered state must satisfy the ACID model.  The
fixed-seed sweeps pin coverage (>= 30 distinct injection points across
the RamDisk / WAL / FIFO / commit families); the hypothesis sweep
randomizes the workload script itself.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import BACKENDS, make_backend
from repro.faults.sweep import SWEEP_DEVICE_BYTES, sweep
from repro.rvm.rlvm import RLVM
from repro.rvm.rvm import RVM


class TestFixedSeedSweep:
    @pytest.mark.parametrize(
        "backend_cls, min_families",
        [
            (RVM, {"ramdisk", "wal", "rvm"}),
            (RLVM, {"ramdisk", "wal", "rvm", "fifo", "logger"}),
        ],
        ids=["rvm", "rlvm"],
    )
    def test_every_reachable_crash_point_is_acid_clean(
        self, backend_cls, min_families
    ):
        report = sweep(backend_cls, seed=1995)
        assert not report.failures, report.failures
        assert not report.not_fired, report.not_fired
        assert report.families >= min_families
        # >= 30 distinct injection points (site, nth), not just modes.
        assert len({(s.site, s.nth) for s in report.fired}) >= 30
        assert len(report.fired) >= 30

    @pytest.mark.parametrize("device", sorted(BACKENDS))
    def test_backend_matrix_every_device_is_acid_clean(self, device):
        """Satellite matrix: each log device, synchronous and
        group-committed, under both libraries — every reachable crash
        point recovers clean, and the per-device total clears the
        acceptance floor of 180 crash points."""
        fired_points = 0
        for backend_cls in (RVM, RLVM):
            for group_commit in (False, True):
                label = device + ("+group" if group_commit else "")
                report = sweep(
                    backend_cls,
                    seed=1995,
                    device_factory=lambda d=device, g=group_commit: make_backend(
                        d, SWEEP_DEVICE_BYTES, group_commit=g
                    ),
                    device_label=label,
                )
                assert not report.failures, (label, report.failures)
                assert not report.not_fired, (label, report.not_fired)
                # The explicit flush/barrier calls put the backend
                # family on every sweep path.
                assert "backend" in report.families
                fired_points += len(report.fired)
        assert fired_points >= 180

    def test_sweep_with_write_reordering(self):
        """A two-deep unflushed device window: recovery stays atomic
        even when the crash loses recent writes out of order."""
        for backend_cls in (RVM, RLVM):
            report = sweep(backend_cls, seed=7, reorder_window=2)
            assert not report.failures, report.failures
            assert not report.not_fired


# Script ops over a 4 KiB segment: word indices stay in range, values
# are arbitrary 32-bit patterns.
_writes = st.lists(
    st.tuples(st.integers(0, 63), st.integers(0, 2**32 - 1)),
    min_size=1,
    max_size=3,
).map(tuple)
_txn = st.tuples(
    st.just("txn"), st.sampled_from(["commit", "abort", "noflush"]), _writes
)
_op = st.one_of(_txn, st.just(("flush",)), st.just(("truncate",)))
_script = st.lists(_op, min_size=1, max_size=5).map(tuple)


class TestRandomizedSweep:
    @settings(max_examples=6, deadline=None)
    @given(
        script=_script,
        backend=st.sampled_from(["rvm", "rlvm"]),
        seed=st.integers(0, 2**16),
    )
    def test_property_random_scripts_sweep_clean(self, script, backend, seed):
        backend_cls = {"rvm": RVM, "rlvm": RLVM}[backend]
        report = sweep(backend_cls, script=script, seed=seed)
        assert not report.failures, report.failures
        # The count pass is exact: every enumerated spec must fire.
        assert not report.not_fired, report.not_fired
