"""Must-pass / must-fail fixtures for every lvm-san rule.

Each rule gets snippets that must be flagged (with exactly the
intended rule id) and close-but-legal snippets that must pass — the
acceptance bar for the linter is that a seeded violation is caught by
exactly the rule that owns the invariant.
"""

from __future__ import annotations

import textwrap

from repro.sanitize.engine import lint_source
from repro.sanitize.rules import FaultSiteRule, all_rules, rules_by_id

#: module path used for fixtures that must be inside the cycle domain
CYCLE_MOD = "repro/hw/fixture.py"
#: and one that is not
PLAIN_MOD = "repro/analysis/fixture.py"

#: registry injected into LVM005 so fixtures don't depend on the real one
KNOWN_SITES = frozenset({"rvm.commit.log", "fifo.overflow"})


def run(source, module_path=CYCLE_MOD):
    rules = all_rules()
    for rule in rules:
        if isinstance(rule, FaultSiteRule):
            rule.known_sites = KNOWN_SITES
    return lint_source(textwrap.dedent(source), module_path, rules)


def rule_ids(source, module_path=CYCLE_MOD):
    return [f.rule_id for f in run(source, module_path)]


class TestLVM001WallClock:
    def test_time_time_flagged(self):
        src = """\
            import time
            def step(cpu):
                start = time.time()
                return start
            """
        assert rule_ids(src) == ["LVM001"]

    def test_aliased_import_flagged(self):
        src = """\
            from time import monotonic as mono
            def step():
                return mono()
            """
        assert rule_ids(src) == ["LVM001"]

    def test_datetime_now_flagged(self):
        src = """\
            from datetime import datetime
            def stamp():
                return datetime.now()
            """
        assert rule_ids(src) == ["LVM001"]

    def test_sleep_flagged(self):
        src = """\
            import time
            def wait():
                time.sleep(1)
            """
        assert rule_ids(src) == ["LVM001"]

    def test_cycle_counters_pass(self):
        src = """\
            def step(cpu, clock):
                now = cpu.now
                return clock.timestamp(now)
            """
        assert rule_ids(src) == []

    def test_outside_cycle_domain_passes(self):
        src = """\
            import time
            def wall():
                return time.time()
            """
        assert rule_ids(src, PLAIN_MOD) == []

    def test_unrelated_time_attribute_passes(self):
        src = """\
            def elapsed(machine):
                return machine.time()
            """
        assert rule_ids(src) == []


class TestLVM002Randomness:
    def test_module_level_random_flagged(self):
        src = """\
            import random
            def pick(items):
                return random.choice(items)
            """
        assert rule_ids(src) == ["LVM002"]

    def test_unseeded_random_instance_flagged(self):
        src = """\
            import random
            def make_rng():
                return random.Random()
            """
        assert rule_ids(src) == ["LVM002"]

    def test_secrets_flagged(self):
        src = """\
            import secrets
            def token():
                return secrets.token_bytes(8)
            """
        assert rule_ids(src) == ["LVM002"]

    def test_os_urandom_flagged(self):
        src = """\
            import os
            def noise():
                return os.urandom(4)
            """
        assert rule_ids(src) == ["LVM002"]

    def test_seeded_random_instance_passes(self):
        src = """\
            import random
            def make_rng(seed):
                return random.Random(seed)
            """
        assert rule_ids(src) == []

    def test_instance_methods_pass(self):
        src = """\
            import random
            def roll(seed):
                rng = random.Random(seed)
                return rng.randint(0, 5)
            """
        assert rule_ids(src) == []


class TestLVM003IntegerCycles:
    def test_true_division_flagged(self):
        src = """\
            def split(total, n):
                cycles = total / n
                return cycles
            """
        assert rule_ids(src) == ["LVM003"]

    def test_float_literal_flagged(self):
        src = """\
            def pad(base):
                wait_cycles = base + 1.5
                return wait_cycles
            """
        assert rule_ids(src) == ["LVM003"]

    def test_float_call_flagged(self):
        src = """\
            def widen(n):
                cycle = float(n)
                return cycle
            """
        assert rule_ids(src) == ["LVM003"]

    def test_augmented_division_flagged(self):
        src = """\
            def halve(cycles):
                cycles /= 2
                return cycles
            """
        assert rule_ids(src) == ["LVM003"]

    def test_attribute_target_flagged(self):
        src = """\
            def charge(self, n):
                self.stall_cycles = n / 2
            """
        assert rule_ids(src) == ["LVM003"]

    def test_float_annotation_flagged(self):
        src = """\
            def f(n):
                cycles: float = 0
                return cycles
            """
        assert rule_ids(src) == ["LVM003"]

    def test_floor_division_passes(self):
        src = """\
            def split(total, n):
                cycles = total // n
                return cycles
            """
        assert rule_ids(src) == []

    def test_non_cycle_ratio_passes(self):
        src = """\
            def rate(records, cycles):
                per_cycle = records / cycles
                return per_cycle
            """
        assert rule_ids(src) == []

    def test_suppression_works(self):
        src = """\
            def report(total, n):
                cycles = total / n  # lvm-san: ignore[LVM003]
                return cycles
            """
        assert rule_ids(src) == []


class TestLVM004GatePattern:
    def test_truthiness_flagged(self):
        src = """\
            _ACTIVE = None
            def gate():
                if _ACTIVE:
                    return 1
                return 0
            """
        assert rule_ids(src) == ["LVM004"]

    def test_equality_with_none_flagged(self):
        src = """\
            _ACTIVE = None
            def gate():
                return _ACTIVE == None
            """
        assert rule_ids(src) == ["LVM004"]

    def test_not_operator_flagged(self):
        src = """\
            _ACTIVE = None
            def gate():
                return not _ACTIVE
            """
        assert rule_ids(src) == ["LVM004"]

    def test_unguarded_member_access_flagged(self):
        src = """\
            from repro.obs import core as obscore
            def emit():
                obscore._ACTIVE.metrics.inc("x", 1)
            """
        assert rule_ids(src, "repro/core/fixture.py") == ["LVM004"]

    def test_is_none_gate_passes(self):
        src = """\
            _ACTIVE = None
            def gate():
                if _ACTIVE is None:
                    return 0
                return 1
            """
        assert rule_ids(src) == []

    def test_guarded_chained_use_passes(self):
        src = """\
            from repro.faults import plan as faultplan
            def hit(site, cycle):
                if faultplan._ACTIVE is not None:
                    faultplan._ACTIVE.hit("rvm.commit.log", cycle=cycle)
            """
        assert rule_ids(src, "repro/core/fixture.py") == []

    def test_capture_to_local_passes(self):
        src = """\
            from repro.obs import core as obscore
            def emit():
                o = obscore._ACTIVE
                if o is not None:
                    o.metrics.inc("x", 1)
            """
        assert rule_ids(src, "repro/core/fixture.py") == []


class TestLVM005FaultSites:
    def test_unknown_site_flagged(self):
        src = """\
            from repro.faults import plan as faultplan
            def commit(cycle):
                faultplan.hit("rvm.comit.log", cycle=cycle)
            """
        assert rule_ids(src, "repro/rvm/fixture.py") == ["LVM005"]

    def test_nonliteral_site_outside_faults_flagged(self):
        src = """\
            from repro.faults import plan as faultplan
            def commit(site, cycle):
                faultplan.hit(site, cycle=cycle)
            """
        assert rule_ids(src, "repro/rvm/fixture.py") == ["LVM005"]

    def test_crashspec_unknown_site_flagged(self):
        src = """\
            from repro.faults.plan import CrashSpec
            SPEC = CrashSpec("no.such.site", 1, "before")
            """
        assert rule_ids(src, "repro/rvm/fixture.py") == ["LVM005"]

    def test_keyword_site_checked(self):
        src = """\
            from repro.faults import plan as faultplan
            def commit(cycle):
                faultplan.hit(site="bogus.site", cycle=cycle)
            """
        assert rule_ids(src, "repro/rvm/fixture.py") == ["LVM005"]

    def test_registered_site_passes(self):
        src = """\
            from repro.faults import plan as faultplan
            def commit(cycle):
                faultplan.hit("rvm.commit.log", cycle=cycle)
            """
        assert rule_ids(src, "repro/rvm/fixture.py") == []

    def test_faults_package_may_forward_site_variables(self):
        src = """\
            def hit(site, cycle):
                pass
            def forward(site, cycle):
                hit(site, cycle)
            """
        assert rule_ids(src, "repro/faults/fixture.py") == []

    def test_real_registry_is_used_when_not_injected(self):
        src = """\
            from repro.faults import plan as faultplan
            def commit(cycle):
                faultplan.hit("rvm.commit.log", cycle=cycle)
            """
        findings = lint_source(
            textwrap.dedent(src), "repro/rvm/fixture.py", [FaultSiteRule()]
        )
        assert findings == []


class TestLVM006FastPathFallback:
    def test_bare_fast_path_flagged(self):
        src = """\
            def copy_fast(dst, src):
                dst[:] = src
            def caller(dst, src):
                copy_fast(dst, src)
            """
        assert rule_ids(src) == ["LVM006"]

    def test_guard_in_function_passes(self):
        src = """\
            from repro.faults import plan as faultplan
            def copy_fast(dst, src):
                if faultplan._ACTIVE is not None:
                    return False
                dst[:] = src
                return True
            """
        assert rule_ids(src) == []

    def test_guard_in_all_callers_passes(self):
        src = """\
            from repro.faults import plan as faultplan
            def _drain_fast(entries):
                entries.clear()
            def drain(entries):
                if faultplan._ACTIVE is not None:
                    return None
                return _drain_fast(entries)
            """
        assert rule_ids(src) == []

    def test_one_unguarded_caller_flags(self):
        src = """\
            from repro.faults import plan as faultplan
            def _drain_fast(entries):
                entries.clear()
            def drain(entries):
                if faultplan._ACTIVE is not None:
                    return None
                return _drain_fast(entries)
            def sneaky(entries):
                return _drain_fast(entries)
            """
        assert rule_ids(src) == ["LVM006"]

    def test_trace_detail_guard_counts(self):
        src = """\
            from repro.obs import core as obscore
            def write_fast(dst, src):
                if obscore.trace_detail_active():
                    return False
                dst[:] = src
                return True
            """
        assert rule_ids(src) == []


class TestRuleInventory:
    def test_rule_ids_are_unique_and_documented(self):
        rules = all_rules()
        ids = [rule.rule_id for rule in rules]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids) == 6
        for rule in rules:
            assert rule.title, rule.rule_id
            assert rule.rationale, rule.rule_id

    def test_rules_by_id(self):
        assert set(rules_by_id()) == {
            "LVM001", "LVM002", "LVM003", "LVM004", "LVM005", "LVM006",
        }
