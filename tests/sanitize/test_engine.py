"""Unit tests for the lvm-san lint engine itself."""

from __future__ import annotations

import textwrap

from repro.sanitize.engine import (
    CYCLE_DOMAIN_PACKAGES,
    Finding,
    Rule,
    lint_paths,
    lint_source,
    make_context,
    module_path_for,
)


class AlwaysFlagRule(Rule):
    """Flags every function definition; used to probe the engine."""

    rule_id = "LVM999"
    title = "test rule"

    def check(self, ctx):
        import ast

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.FunctionDef):
                yield self.finding(ctx, node, f"function {node.name}")


class TestContext:
    def test_cycle_domain_classification(self):
        for pkg in sorted(CYCLE_DOMAIN_PACKAGES):
            ctx = make_context("x = 1\n", f"repro/{pkg}/mod.py")
            assert ctx.in_cycle_domain, pkg
        for module_path in ("repro/analysis/report.py", "repro/sanitize/cli.py",
                            "scripts/tool.py", "repro/__init__.py"):
            ctx = make_context("x = 1\n", module_path)
            assert not ctx.in_cycle_domain, module_path

    def test_module_name(self):
        assert make_context("", "repro/hw/bus.py").module_name == "repro.hw.bus"
        assert make_context("", "repro/hw/__init__.py").module_name == "repro.hw"

    def test_module_path_for(self, tmp_path):
        nested = tmp_path / "src" / "repro" / "hw" / "bus.py"
        assert module_path_for(nested) == "repro/hw/bus.py"
        assert module_path_for(tmp_path / "standalone.py") == "standalone.py"


class TestSuppression:
    def test_bare_ignore_suppresses_all(self):
        source = "def f():  # lvm-san: ignore\n    pass\n"
        assert lint_source(source, "repro/hw/m.py", [AlwaysFlagRule()]) == []

    def test_listed_rule_suppressed(self):
        source = "def f():  # lvm-san: ignore[LVM999]\n    pass\n"
        assert lint_source(source, "repro/hw/m.py", [AlwaysFlagRule()]) == []

    def test_other_rule_not_suppressed(self):
        source = "def f():  # lvm-san: ignore[LVM001]\n    pass\n"
        findings = lint_source(source, "repro/hw/m.py", [AlwaysFlagRule()])
        assert [f.rule_id for f in findings] == ["LVM999"]

    def test_suppression_only_covers_its_line(self):
        source = textwrap.dedent(
            """\
            def f():  # lvm-san: ignore[LVM999]
                pass
            def g():
                pass
            """
        )
        findings = lint_source(source, "repro/hw/m.py", [AlwaysFlagRule()])
        assert [f.message for f in findings] == ["function g"]

    def test_marker_inside_string_is_not_a_suppression(self):
        source = 'def f():\n    return "lvm-san: ignore"\n'
        findings = lint_source(source, "repro/hw/m.py", [AlwaysFlagRule()])
        assert [f.rule_id for f in findings] == ["LVM999"]


class TestLintPaths:
    def test_walks_tree_and_sorts(self, tmp_path):
        (tmp_path / "b.py").write_text("def zz():\n    pass\n")
        (tmp_path / "a.py").write_text("def aa():\n    pass\n")
        findings = lint_paths([tmp_path], [AlwaysFlagRule()])
        assert [f.message for f in findings] == ["function aa", "function zz"]

    def test_syntax_error_becomes_lvm000(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        findings = lint_paths([bad], [AlwaysFlagRule()])
        assert len(findings) == 1
        assert findings[0].rule_id == "LVM000"
        assert "syntax error" in findings[0].message

    def test_single_file_path(self, tmp_path):
        file_path = tmp_path / "one.py"
        file_path.write_text("def one():\n    pass\n")
        findings = lint_paths([file_path], [AlwaysFlagRule()])
        assert [f.message for f in findings] == ["function one"]


class TestFinding:
    def test_str_is_clickable(self):
        finding = Finding("src/x.py", 3, 7, "LVM001", "no wall clock")
        assert str(finding) == "src/x.py:3:7: LVM001 no wall clock"

    def test_ordering_is_positional(self):
        a = Finding("a.py", 9, 1, "LVM002", "m")
        b = Finding("a.py", 10, 1, "LVM001", "m")
        c = Finding("b.py", 1, 1, "LVM001", "m")
        assert sorted([c, b, a]) == [a, b, c]
