"""Exception-edge CFG fixtures and the span-balance verdicts they drive.

The CFG (``repro.sanitize.deep.cfg``) is the substrate every deep rule
interprets, so its exception modelling is tested twice over: once
structurally (the edges exist) and once behaviourally (LVM103 reaches
the right balanced/leaked verdict through try/finally, ``async with``,
early returns, and exception exits).
"""

from __future__ import annotations

import ast
import textwrap

from repro.sanitize.deep.cfg import EXC, build_cfg, calls_at, eval_exprs
from repro.sanitize.deep.project import Project
from repro.sanitize.deep import spans
from repro.sanitize.engine import make_context


def _func(source: str):
    tree = ast.parse(textwrap.dedent(source))
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    raise AssertionError("no function in fixture")


def _span_verdicts(source: str, module_path: str = "repro/serve/fix.py"):
    """Run LVM103 over one in-memory module; (findings, facts)."""
    ctx = make_context(textwrap.dedent(source), module_path)
    project = Project.from_contexts([ctx])
    return spans.check(project)


def _reachable(cfg, start_nid: int, kinds=None):
    """Transitive successors of ``start_nid`` (optionally edge-filtered)."""
    seen = set()
    frontier = [start_nid]
    while frontier:
        nid = frontier.pop()
        for succ, kind in cfg.nodes[nid].succs:
            if kinds is not None and kind not in kinds:
                continue
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return seen


class TestCfgStructure:
    def test_call_nodes_get_exception_edges(self):
        cfg = build_cfg(_func(
            """
            def f(x):
                work(x)
                return x
            """
        ))
        call_node = next(n for n in cfg.stmt_nodes() if calls_at(n))
        assert (cfg.raise_exit.nid, EXC) in call_node.succs

    def test_try_except_routes_exception_to_handler(self):
        cfg = build_cfg(_func(
            """
            def f(x):
                try:
                    work(x)
                except ValueError:
                    x = None
                return x
            """
        ))
        handlers = cfg.handler_nodes()
        assert len(handlers) == 1
        assert handlers[0].catches == ("ValueError",)
        call_node = next(
            n for n in cfg.stmt_nodes() if isinstance(n.stmt, ast.Expr)
        )
        # The exc edge may route through a dispatch node; the handler
        # must be reachable along exception edges.
        assert handlers[0].nid in _reachable(cfg, call_node.nid, kinds={EXC})

    def test_finally_body_appears_on_normal_and_exceptional_paths(self):
        cfg = build_cfg(_func(
            """
            def f(x):
                try:
                    work(x)
                finally:
                    cleanup()
            """
        ))
        # The finally body is duplicated: one copy flows to exit, one
        # re-raises to raise_exit.
        cleanup_nodes = [
            n
            for n in cfg.stmt_nodes()
            if isinstance(n.stmt, ast.Expr)
            and isinstance(n.stmt.value, ast.Call)
            and isinstance(n.stmt.value.func, ast.Name)
            and n.stmt.value.func.id == "cleanup"
        ]
        assert len(cleanup_nodes) == 2
        # One copy completes to exit, the other re-raises — each along
        # its own normal-flow continuation.
        continuations = [
            _reachable(cfg, n.nid, kinds={"next", "true", "false"})
            for n in cleanup_nodes
        ]
        assert any(cfg.exit.nid in c for c in continuations)
        assert any(cfg.raise_exit.nid in c for c in continuations)

    def test_return_threads_through_finally(self):
        cfg = build_cfg(_func(
            """
            def f(x):
                try:
                    return work(x)
                finally:
                    cleanup()
            """
        ))
        ret_node = next(
            n for n in cfg.stmt_nodes() if isinstance(n.stmt, ast.Return)
        )
        # Return must not jump straight to exit: it runs the finally copy.
        direct = {nid for nid, kind in ret_node.succs if kind != EXC}
        assert cfg.exit.nid not in direct

    def test_while_true_has_no_false_edge(self):
        cfg = build_cfg(_func(
            """
            def f():
                while True:
                    step()
            """
        ))
        head = next(n for n in cfg.stmt_nodes() if isinstance(n.stmt, ast.While))
        assert all(kind != "false" for _, kind in head.succs)

    def test_eval_exprs_skips_compound_bodies(self):
        func = _func(
            """
            def f(xs):
                for x in source(xs):
                    body_call(x)
            """
        )
        cfg = build_cfg(func)
        head = next(n for n in cfg.stmt_nodes() if isinstance(n.stmt, ast.For))
        calls = [c.func.id for c in calls_at(head) if isinstance(c.func, ast.Name)]
        assert calls == ["source"]  # body_call belongs to its own node
        assert eval_exprs(head) == [head.stmt.iter]


class TestSpanBalanceVerdicts:
    def test_try_finally_span_is_balanced(self):
        findings, facts = _span_verdicts(
            """
            def handler(obs, req):
                obs.stage_enter("dispatch")
                try:
                    return work(req)
                finally:
                    obs.stage_exit("dispatch")
            """
        )
        assert findings == []
        assert facts == ["lvm103 span-balanced repro/serve/fix.py::handler"]

    def test_early_return_leaks_span(self):
        findings, facts = _span_verdicts(
            """
            def handler(obs, req):
                obs.stage_enter("dispatch")
                if req is None:
                    return None
                obs.stage_exit("dispatch")
                return req
            """
        )
        assert [f.rule_id for f in findings] == ["LVM103"]
        assert "delta" in findings[0].message
        assert facts == []

    def test_exception_exit_is_exempt(self):
        # An exception abandoning the span is the postmortem's record:
        # the *normal* path balances, so the function is clean.
        findings, facts = _span_verdicts(
            """
            def handler(obs, req):
                obs.stage_enter("dispatch")
                result = work(req)
                obs.stage_exit("dispatch")
                return result
            """
        )
        assert findings == []
        assert facts == ["lvm103 span-balanced repro/serve/fix.py::handler"]

    def test_caught_exception_resuming_normally_still_balances(self):
        findings, _ = _span_verdicts(
            """
            def handler(obs, req):
                obs.stage_enter("dispatch")
                try:
                    work(req)
                except ValueError:
                    pass
                obs.stage_exit("dispatch")
            """
        )
        assert findings == []

    def test_async_with_balanced(self):
        findings, facts = _span_verdicts(
            """
            async def handler(obs, lock, req):
                async with lock:
                    obs.stage_enter("dispatch")
                    result = await work(req)
                    obs.stage_exit("dispatch")
                return result
            """
        )
        assert findings == []
        assert facts == ["lvm103 span-balanced repro/serve/fix.py::handler"]

    def test_async_with_early_return_leaks(self):
        findings, _ = _span_verdicts(
            """
            async def handler(obs, lock, req):
                async with lock:
                    obs.stage_enter("dispatch")
                    if req.cached:
                        return req.value
                    result = await work(req)
                    obs.stage_exit("dispatch")
                return result
            """
        )
        assert [f.rule_id for f in findings] == ["LVM103"]

    def test_correlated_gates_do_not_fabricate_paths(self):
        # wal._append style: enter and exit separately gated on the
        # same local.  Naive path-insensitive analysis would pair
        # (enter taken, exit skipped); the gate enumeration must not.
        findings, facts = _span_verdicts(
            """
            def append(tracer, disk, rec):
                t = tracer._ACTIVE
                if t is not None:
                    t.device_enter("disk")
                disk.put(rec)
                if t is not None:
                    t.stage_exit("disk")
            """
        )
        assert findings == []
        assert facts == ["lvm103 span-balanced repro/serve/fix.py::append"]

    def test_unbounded_loop_growth_reported(self):
        findings, _ = _span_verdicts(
            """
            def drain(obs, q):
                while q:
                    obs.stage_enter("item")
            """
        )
        assert [f.rule_id for f in findings] == ["LVM103"]
        assert "without bound" in findings[0].message

    def test_obs_package_is_excluded(self):
        findings, facts = _span_verdicts(
            """
            def protocol_impl(obs):
                obs.stage_enter("x")
            """,
            module_path="repro/obs/tracer.py",
        )
        assert findings == []
        assert facts == []
