"""CLI contract of ``python -m repro lint --deep``.

Exit codes, JSON and SARIF report shapes, the baseline mechanism
(write, subtract, drift), and the LVM007 dead-suppression pass — all
through the real subprocess entry point, because CI consumes exactly
that surface.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

VIOLATION = textwrap.dedent(
    """
    class Disk:
        def write(self, rec):
            pass
        def flush(self):
            pass

    class Srv:
        def __init__(self):
            self.disk = Disk()
        def commit_ack(self, rec, fut):
            self.disk.write(rec)
            fut.set_result(True)
    """
)

CLEAN = VIOLATION.replace(
    "self.disk.write(rec)", "self.disk.write(rec)\n        self.disk.flush()"
)


def lint(*argv, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True,
        text=True,
        cwd=cwd,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        timeout=180,
    )


@pytest.fixture
def violation_file(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(VIOLATION)
    return path


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "good.py"
    path.write_text(CLEAN)
    return path


class TestExitCodes:
    def test_violation_exits_one(self, tmp_path, violation_file):
        result = lint("--deep", violation_file.name, cwd=tmp_path)
        assert result.returncode == 1
        assert "LVM101" in result.stdout

    def test_clean_exits_zero_and_reports_facts(self, tmp_path, clean_file):
        result = lint("--deep", "--facts", clean_file.name, cwd=tmp_path)
        assert result.returncode == 0, result.stdout + result.stderr
        assert "fact: lvm101 ack-clean" in result.stdout
        assert "clean" in result.stderr

    def test_format_json_requires_deep(self, tmp_path, clean_file):
        result = lint("--format", "json", clean_file.name, cwd=tmp_path)
        assert result.returncode == 2
        assert "requires --deep" in result.stderr


class TestReports:
    def test_json_report(self, tmp_path, violation_file):
        result = lint("--deep", "--format", "json", violation_file.name, cwd=tmp_path)
        assert result.returncode == 1
        doc = json.loads(result.stdout)
        assert doc["version"] == 1
        assert doc["counts"] == {"LVM101": 1}
        (finding,) = doc["findings"]
        assert finding["rule_id"] == "LVM101"
        assert finding["path"] == "bad.py"
        assert finding["line"] > 0

    def test_sarif_report(self, tmp_path, violation_file):
        out = tmp_path / "report.sarif"
        result = lint(
            "--deep",
            "--format",
            "sarif",
            "--out",
            out.name,
            violation_file.name,
            cwd=tmp_path,
        )
        assert result.returncode == 1
        doc = json.loads(out.read_text())
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "lvm-san-deep"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"LVM101", "LVM102", "LVM103", "LVM104"} <= rule_ids
        (res,) = run["results"]
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "bad.py"
        assert loc["region"]["startLine"] > 0


class TestBaseline:
    def test_write_then_apply_then_drift(self, tmp_path, violation_file):
        baseline = tmp_path / "bl.json"
        # 1. Take on the debt.
        result = lint(
            "--deep",
            "--write-baseline",
            "--baseline",
            baseline.name,
            violation_file.name,
            cwd=tmp_path,
        )
        assert result.returncode == 0
        doc = json.loads(baseline.read_text())
        assert len(doc["entries"]) == 1
        assert doc["entries"][0]["rule_id"] == "LVM101"
        # 2. Baselined finding no longer fails the run.
        result = lint(
            "--deep", "--baseline", baseline.name, violation_file.name, cwd=tmp_path
        )
        assert result.returncode == 0, result.stdout + result.stderr
        # 3. Fixing the code makes the entry stale — that's a failure.
        violation_file.write_text(CLEAN)
        result = lint(
            "--deep", "--baseline", baseline.name, violation_file.name, cwd=tmp_path
        )
        assert result.returncode == 1
        assert "stale baseline entry" in result.stderr

    def test_committed_baseline_is_empty(self):
        doc = json.loads((REPO_ROOT / ".lvm-deep-baseline.json").read_text())
        assert doc["entries"] == []


class TestDeadSuppressions:
    def test_dead_suppression_fails_deep_lint(self, tmp_path):
        path = tmp_path / "sup.py"
        path.write_text("x = 1  # lvm-san: ignore[LVM003]\n")
        result = lint("--deep", path.name, cwd=tmp_path)
        assert result.returncode == 1
        assert "LVM007" in result.stdout
        assert "dead suppression" in result.stdout

    def test_live_suppression_is_not_flagged(self, tmp_path, violation_file):
        source = VIOLATION.replace(
            "fut.set_result(True)",
            "fut.set_result(True)  # lvm-san: ignore[LVM101]",
        )
        violation_file.write_text(source)
        result = lint("--deep", violation_file.name, cwd=tmp_path)
        assert result.returncode == 0, result.stdout + result.stderr

    def test_select_skips_dead_suppression_check(self, tmp_path):
        path = tmp_path / "sup.py"
        path.write_text("x = 1  # lvm-san: ignore[LVM003]\n")
        result = lint("--deep", "--select", "LVM001", path.name, cwd=tmp_path)
        assert result.returncode == 0, result.stdout + result.stderr

    def test_list_rules_documents_lvm007(self, tmp_path):
        result = lint("--list-rules", cwd=tmp_path)
        assert result.returncode == 0
        assert "LVM007" in result.stdout


FIXTURES = REPO_ROOT / "tests" / "sanitize" / "fixtures" / "deep"
MUST_FAIL = sorted((FIXTURES / "must_fail").glob("*.py"))
MUST_PASS = sorted((FIXTURES / "must_pass").glob("*.py"))


class TestFixtureCorpus:
    """The committed fixture corpus CI's must-fail matrix loops over.

    Each must-fail file is named ``lvmNNN_<what>.py`` and must produce
    at least one finding of exactly that rule; each must-pass file must
    be completely clean.  This is the inertness check for every rule
    family: a deep linter that stops seeing violations fails here, not
    silently in production.
    """

    @pytest.mark.parametrize("path", MUST_FAIL, ids=lambda p: p.stem)
    def test_must_fail(self, path, tmp_path):
        expected = path.stem.split("_")[0].upper()
        result = lint("--deep", str(path), cwd=tmp_path)
        assert result.returncode == 1, result.stdout + result.stderr
        assert expected in result.stdout

    @pytest.mark.parametrize("path", MUST_PASS, ids=lambda p: p.stem)
    def test_must_pass(self, path, tmp_path):
        result = lint("--deep", str(path), cwd=tmp_path)
        assert result.returncode == 0, result.stdout + result.stderr

    def test_unreachable_registered_site_must_fail(self, tmp_path):
        result = lint(
            "--deep", str(FIXTURES / "lvm104_unreachable"), cwd=tmp_path
        )
        assert result.returncode == 1, result.stdout + result.stderr
        assert "LVM104" in result.stdout
        assert "fx.orphan" in result.stdout
        assert "fx.live" not in result.stdout

    def test_corpus_is_populated(self):
        # Every deep rule family plus the dead-suppression check has a
        # must-fail fixture; losing one quietly would hollow out CI.
        prefixes = {p.stem.split("_")[0] for p in MUST_FAIL}
        assert {"lvm101", "lvm102", "lvm103", "lvm007"} <= prefixes
        assert len(MUST_PASS) >= 3
