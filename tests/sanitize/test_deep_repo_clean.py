"""The repo must satisfy its own *whole-program* invariants.

The flat repo-clean test (``test_repo_clean.py``) proves every file is
locally well-formed; this one proves the interprocedural obligations
hold — and, more importantly, that the clean verdict is backed by
positive facts: the server's sync-commit, group-commit, and crash
paths were each actually walked and verified, with zero suppressions.
"""

from __future__ import annotations

from pathlib import Path

from repro.sanitize.deep.runner import run_deep

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"

# One deep run for the whole module (it costs a few seconds).
_RESULT = None


def _result():
    global _RESULT
    if _RESULT is None:
        _RESULT = run_deep([SRC_REPRO])
    return _RESULT


class TestDeepRepoClean:
    def test_no_findings(self):
        result = _result()
        assert result.findings == [], "\n".join(str(f) for f in result.findings)

    def test_analysis_actually_covered_the_tree(self):
        result = _result()
        assert result.files > 100
        assert result.functions > 1000
        assert len(result.facts) > 50

    def test_no_deep_suppressions_anywhere(self):
        # Acceptance: LVM101-104 hold with zero suppressions.  Scan the
        # tree's suppression comments for deep rule ids.
        import re

        pattern = re.compile(r"lvm-san\s*:\s*ignore\[([^\]]*)\]")
        offenders = []
        for path in sorted(SRC_REPRO.rglob("*.py")):
            for match in pattern.finditer(path.read_text()):
                if any(rid.strip().startswith("LVM1") for rid in match.group(1).split(",")):
                    offenders.append(str(path))
        assert offenders == []


class TestDurabilityFacts:
    """LVM101 must have verified the three serving paths by name."""

    def test_sync_commit_ack_verified(self):
        assert (
            "lvm101 ack-clean repro/serve/server.py::TxnServer._commit:239"
            in _result().facts
        )

    def test_group_commit_ack_verified(self):
        assert (
            "lvm101 ack-clean repro/serve/server.py::TxnServer._flush_batch:271"
            in _result().facts
        )

    def test_ack_helper_verified(self):
        assert (
            "lvm101 ack-clean repro/serve/server.py::TxnServer._ack:306"
            in _result().facts
        )

    def test_crash_paths_ack_free(self):
        facts = _result().facts
        crash_facts = [
            f
            for f in facts
            if f.startswith("lvm101 crash-ack-free repro/serve/server.py::TxnServer.serve:")
        ]
        # Both ServeCrashed handlers in TxnServer.serve.
        assert len(crash_facts) == 2


class TestOtherFamilies:
    def test_span_facts_cover_the_server_dispatch(self):
        assert (
            "lvm103 span-balanced repro/serve/server.py::TxnServer._serve_op"
            in _result().facts
        )

    def test_every_registered_site_proved_reachable(self):
        import ast

        registry = SRC_REPRO / "faults" / "sites.py"
        from repro.sanitize.sitegen import registered_sites

        sites = registered_sites(ast.parse(registry.read_text()))
        assert sites, "registry parse failed"
        facts = set(_result().facts)
        missing = [
            s for s in sorted(sites) if f"lvm104 site-reachable {s}" not in facts
        ]
        assert missing == []
