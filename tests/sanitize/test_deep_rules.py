"""Must-pass / must-fail fixtures for the interprocedural rule families.

Every deep rule gets both directions: a seeded violation it *must*
report (an inert analysis silently passes everything) and a
conforming twin it *must not* report (a paranoid analysis is unusable).
Fixtures run through the same :class:`Project`/:class:`CallGraph`
machinery as the real ``--deep`` run, just over in-memory modules.
"""

from __future__ import annotations

import textwrap
from typing import Sequence, Tuple

from repro.sanitize.deep import durability, reach, spans, units
from repro.sanitize.deep.callgraph import CallGraph
from repro.sanitize.deep.project import Project
from repro.sanitize.engine import make_context


def _project(*sources: str, module: str = "repro/serve/fix{}.py"):
    contexts = [
        make_context(textwrap.dedent(src), module.format(i))
        for i, src in enumerate(sources)
    ]
    project = Project.from_contexts(contexts)
    return project, CallGraph(project)


def _rule_ids(findings) -> list:
    return [f.rule_id for f in findings]


DEVICE = """
class Disk:
    def write(self, rec):
        pass
    def flush(self):
        pass
"""


class TestLVM101Durability:
    def test_ack_after_flush_is_clean_and_proved(self):
        project, graph = _project(
            DEVICE
            + textwrap.dedent("""
        class Srv:
            def __init__(self):
                self.disk = Disk()
            def commit_ack(self, rec, fut):
                self.disk.write(rec)
                self.disk.flush()
                fut.set_result(True)
        """)
        )
        findings, facts = durability.check(project, graph)
        assert findings == []
        assert any("ack-clean" in f and "commit_ack" in f for f in facts)

    def test_ack_before_flush_is_reported(self):
        project, graph = _project(
            DEVICE
            + textwrap.dedent("""
        class Srv:
            def __init__(self):
                self.disk = Disk()
            def commit_ack(self, rec, fut):
                self.disk.write(rec)
                fut.set_result(True)
        """)
        )
        findings, _ = durability.check(project, graph)
        assert _rule_ids(findings) == ["LVM101"]
        assert "buffered" in findings[0].message

    def test_interprocedural_dirty_state_crosses_calls(self):
        # The write happens in a helper; the ack in the caller.  Only a
        # summary-based analysis connects them.
        project, graph = _project(
            DEVICE
            + textwrap.dedent("""
        class Srv:
            def __init__(self):
                self.disk = Disk()
            def _append(self, rec):
                self.disk.write(rec)
            def commit_ack(self, rec, fut):
                self._append(rec)
                fut.set_result(True)
        """)
        )
        findings, _ = durability.check(project, graph)
        assert _rule_ids(findings) == ["LVM101"]

    def test_flush_in_callee_discharges_caller_obligation(self):
        project, graph = _project(
            DEVICE
            + textwrap.dedent("""
        class Srv:
            def __init__(self):
                self.disk = Disk()
            def _append_durable(self, rec):
                self.disk.write(rec)
                self.disk.flush()
            def commit_ack(self, rec, fut):
                self._append_durable(rec)
                fut.set_result(True)
        """)
        )
        findings, _ = durability.check(project, graph)
        assert findings == []

    def test_unsound_flush_impl_is_reported(self):
        # A flush() that leaves its own buffered write behind betrays
        # every caller that trusted it.
        project, graph = _project(
            """
        class Dev:
            def write(self, rec):
                pass

        class Wrapper:
            def __init__(self):
                self.device = Dev()
            def flush(self):
                self.device.write(b"tail")
        """
        )
        findings, _ = durability.check(project, graph)
        assert _rule_ids(findings) == ["LVM101"]
        assert "flush" in findings[0].message

    def test_crash_handler_must_not_ack(self):
        project, graph = _project(
            """
        class CrashPoint(Exception):
            pass

        class Srv:
            def _ack(self, fut):
                fut.set_result(True)
            def step(self):
                pass
            def serve(self, fut):
                try:
                    self.step()
                except CrashPoint:
                    self._ack(fut)
        """
        )
        findings, _ = durability.check(project, graph)
        assert "LVM101" in _rule_ids(findings)
        assert any("Crash" in f.message or "crash" in f.message for f in findings)

    def test_crash_handler_without_ack_is_proved_free(self):
        project, graph = _project(
            """
        class CrashPoint(Exception):
            pass

        class Srv:
            def _log(self, why):
                pass
            def step(self):
                pass
            def serve(self):
                try:
                    self.step()
                except CrashPoint:
                    self._log("crashed")
        """
        )
        findings, facts = durability.check(project, graph)
        assert findings == []
        assert any("crash-ack-free" in f for f in facts)

    def test_flush_flag_false_path_keeps_obligation_alive(self):
        # The flush=False branch skips the flush but still reaches the
        # ack — the analysis must not let the flush=True branch excuse it.
        project, graph = _project(
            DEVICE
            + textwrap.dedent("""
        class Srv:
            def __init__(self):
                self.disk = Disk()
            def _ack(self, fut):
                fut.set_result(True)
            def _commit(self, rec, fut, flush=True):
                self.disk.write(rec)
                if flush:
                    self.disk.flush()
                self._ack(fut)
            def fast_path(self, rec, fut):
                self._commit(rec, fut, flush=False)
        """)
        )
        findings, _ = durability.check(project, graph)
        assert "LVM101" in _rule_ids(findings)
        assert any("_commit" in f.message for f in findings)

    def test_flush_flag_ack_only_on_flushed_branch_is_clean(self):
        # rvm.Transaction.commit's real shape: the unflushed branch
        # defers the ack, so specializing on the flag proves both
        # callers clean.
        project, graph = _project(
            DEVICE
            + textwrap.dedent("""
        class Srv:
            def __init__(self):
                self.disk = Disk()
            def _ack(self, fut):
                fut.set_result(True)
            def _commit(self, rec, fut, flush=True):
                self.disk.write(rec)
                if flush:
                    self.disk.flush()
                    self._ack(fut)
            def fast_path(self, rec, fut):
                self._commit(rec, fut, flush=False)
        """)
        )
        findings, _ = durability.check(project, graph)
        assert findings == []


class TestLVM102Units:
    def test_wall_minus_cycles_is_reported(self):
        project, graph = _project(
            """
        import time

        def elapsed(start_cycles):
            wall = time.time()
            return wall - start_cycles
        """
        )
        findings, _ = units.check(project, graph)
        assert _rule_ids(findings) == ["LVM102"]

    def test_cycles_per_second_rate_is_legal(self):
        project, graph = _project(
            """
        def rate(total_cycles, wall_secs):
            return total_cycles / wall_secs
        """
        )
        findings, _ = units.check(project, graph)
        assert findings == []

    def test_bytes_into_cycle_named_variable_is_reported(self):
        project, graph = _project(
            """
        def budget(nbytes):
            cycles_needed = nbytes
            return cycles_needed
        """
        )
        findings, _ = units.check(project, graph)
        assert _rule_ids(findings) == ["LVM102"]

    def test_interprocedural_wall_return_added_to_cycles(self):
        project, graph = _project(
            """
        import time

        def wall_now():
            return time.time()

        def deadline(cycle_count):
            return cycle_count + wall_now()
        """
        )
        findings, _ = units.check(project, graph)
        assert _rule_ids(findings) == ["LVM102"]

    def test_cycles_plus_cycles_is_legal(self):
        project, graph = _project(
            """
        def total(cycles_a, cycles_b):
            return cycles_a + cycles_b
        """
        )
        findings, _ = units.check(project, graph)
        assert findings == []


class TestLVM103Spans:
    # The CFG-level span verdicts live in test_cfg.py; here: gate purity.
    def test_impure_gate_store_is_reported(self):
        ctx = make_context(
            textwrap.dedent(
                """
            def traced(tracer, obj):
                t = tracer._ACTIVE
                if t is not None:
                    obj.count += 1
            """
            ),
            "repro/serve/fix0.py",
        )
        findings, _ = spans.check(Project.from_contexts([ctx]))
        assert _rule_ids(findings) == ["LVM103"]
        assert "mutation" in findings[0].message

    def test_gate_control_flow_is_reported(self):
        ctx = make_context(
            textwrap.dedent(
                """
            def traced(tracer, req):
                t = tracer._ACTIVE
                if t is not None:
                    t.note(req)
                    raise RuntimeError("tracing broke the bare path")
            """
            ),
            "repro/serve/fix0.py",
        )
        findings, _ = spans.check(Project.from_contexts([ctx]))
        assert _rule_ids(findings) == ["LVM103"]
        assert "control flow" in findings[0].message

    def test_pure_gate_body_is_legal(self):
        ctx = make_context(
            textwrap.dedent(
                """
            def traced(tracer, req):
                t = tracer._ACTIVE
                if t is not None:
                    size = len(req)
                    t.note(size)
            """
            ),
            "repro/serve/fix0.py",
        )
        findings, _ = spans.check(Project.from_contexts([ctx]))
        assert findings == []

    def test_fused_fallback_single_return_is_legal(self):
        ctx = make_context(
            textwrap.dedent(
                """
            def fast_path(faultplan, data):
                if faultplan._ACTIVE is not None:
                    return False
                return _do_fast(data)
            """
            ),
            "repro/serve/fix0.py",
        )
        findings, _ = spans.check(Project.from_contexts([ctx]))
        assert findings == []


class TestLVM104Reachability:
    REGISTRY = {"srv.commit", "srv.orphan"}

    SOURCE = """
    SITE_COMMIT = "srv.commit"

    def _hidden(plan):
        plan.hit("srv.orphan")

    class Srv:
        def commit(self, plan):
            plan.hit(SITE_COMMIT)
    """

    def test_unreachable_site_is_reported_and_live_site_proved(self):
        project, graph = _project(self.SOURCE)
        findings, facts = reach.check(project, graph, set(self.REGISTRY))
        assert _rule_ids(findings) == ["LVM104"]
        assert "srv.orphan" in findings[0].message
        assert facts == ["lvm104 site-reachable srv.commit"]

    def test_stale_registry_entry_is_reported(self):
        project, graph = _project(self.SOURCE)
        findings, _ = reach.check(
            project, graph, {"srv.commit", "srv.gone_from_code"}
        )
        assert _rule_ids(findings) == ["LVM104"]
        assert "stale" in findings[0].message

    def test_site_behind_public_caller_chain_is_live(self):
        project, graph = _project(
            """
        def _helper(plan):
            plan.hit("srv.deep_site")

        def entry(plan):
            _helper(plan)
        """
        )
        findings, facts = reach.check(project, graph, {"srv.deep_site"})
        assert findings == []
        assert facts == ["lvm104 site-reachable srv.deep_site"]
