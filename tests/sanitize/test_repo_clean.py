"""The repo itself must satisfy its own invariants.

This is the teeth of the linter: ``python -m repro lint src/repro``
exits 0 on every commit, and the seeded-violation tests prove that a
regression would actually be caught (an inert linter also exits 0).
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sanitize.engine import lint_paths, lint_source
from repro.sanitize.rules import all_rules

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"


class TestRepoClean:
    def test_lint_api_reports_no_findings(self):
        findings = lint_paths([SRC_REPRO], all_rules())
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_lint_cli_exits_zero(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "lint", str(SRC_REPRO)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_lint_cli_list_rules(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--list-rules"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0
        for rule_id in ("LVM001", "LVM002", "LVM003", "LVM004", "LVM005", "LVM006"):
            assert rule_id in result.stdout

    def test_lint_cli_select_unknown_rule_errors(self):
        from repro.sanitize.cli import lint_main

        with pytest.raises(SystemExit):
            lint_main(["--select", "LVM777", str(SRC_REPRO)])


class TestSeededViolations:
    """Re-lint real repo files with one violation spliced in.

    Each seeded violation must be caught by exactly the intended rule
    — over the *real* module, not a synthetic fixture, so rule scoping
    (cycle-domain paths, registry contents) is exercised for real.
    """

    def test_seeded_wall_clock_caught_by_lvm001(self):
        source = (SRC_REPRO / "hw" / "clock.py").read_text()
        source += "\n\nimport time\n\ndef _wall():\n    return time.time()\n"
        findings = lint_source(source, "repro/hw/clock.py", all_rules())
        assert [f.rule_id for f in findings] == ["LVM001"]

    def test_seeded_float_cycle_caught_by_lvm003(self):
        source = (SRC_REPRO / "hw" / "clock.py").read_text()
        source += "\n\ndef _skew(total, n):\n    cycles = total / n\n    return cycles\n"
        findings = lint_source(source, "repro/hw/clock.py", all_rules())
        assert [f.rule_id for f in findings] == ["LVM003"]

    def test_seeded_unregistered_site_caught_by_lvm005(self):
        source = (SRC_REPRO / "rvm" / "wal.py").read_text()
        source += (
            "\n\ndef _bad(cycle):\n"
            '    faultplan.hit("wal.bogus_site", cycle=cycle)\n'
        )
        findings = lint_source(source, "repro/rvm/wal.py", all_rules())
        assert [f.rule_id for f in findings] == ["LVM005"]
        assert "wal.bogus_site" in findings[0].message


def _tool(name):
    return shutil.which(name)


class TestExternalLinters:
    """ruff/mypy run clean when available (CI installs them; the
    sandbox image may not have them, so these skip rather than fail)."""

    @pytest.mark.skipif(_tool("ruff") is None, reason="ruff not installed")
    def test_ruff_clean(self):
        result = subprocess.run(
            ["ruff", "check", "src", "tests"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    @pytest.mark.skipif(_tool("mypy") is None, reason="mypy not installed")
    def test_mypy_clean(self):
        result = subprocess.run(
            ["mypy", "src/repro/sanitize", "src/repro/faults"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stdout + result.stderr
