"""Log-race sanitizer tests: vector clocks, detector, machine wiring.

The acceptance bar (ISSUE 5): the sanitizer flags a seeded
unsynchronized cross-CPU same-page write, reports none on the canned
workloads, and a sanitized-off run is cycle- and log-record-identical
to seed.
"""

from __future__ import annotations

from contextlib import contextmanager

import pytest

from repro.core.context import boot, set_current_machine, use_machine
from repro.core.log_segment import LogSegment
from repro.core.process import Process
from repro.core.region import StdRegion
from repro.core.segment import StdSegment
from repro.hw.params import PAGE_SIZE, MachineConfig
from repro.sanitize import race
from repro.sanitize.race import LogRaceDetector, RaceReport
from repro.sanitize.vclock import VectorClock

#: Golden cycle/record counts for the canned workloads, captured with
#: no detector installed before the race hooks existed.  The wiring
#: must not move them by a single cycle.
COPY_GOLDEN = {"cycles": 830787, "records_logged": 16384}
TIMEWARP_GOLDEN = {"cycles": 71595, "records": 1070}


@contextmanager
def fresh_detector(**kwargs):
    """Install a private detector, shelving any ambient --lvm-san one."""
    previous = race.active()
    race.uninstall()
    detector = LogRaceDetector(**kwargs)
    race.install(detector)
    try:
        yield detector
    finally:
        race.uninstall()
        if previous is not None:
            race.install(previous)


class TestVectorClock:
    def test_tick_and_get(self):
        clock = VectorClock()
        assert clock.get(0) == 0
        assert clock.tick(0) == 1
        assert clock.tick(0) == 2
        assert clock.get(0) == 2
        assert clock.get(7) == 0

    def test_covers(self):
        clock = VectorClock({1: 3})
        assert clock.covers(1, 3)
        assert clock.covers(1, 2)
        assert not clock.covers(1, 4)
        assert not clock.covers(2, 1)
        assert clock.covers(2, 0)

    def test_join_is_componentwise_max(self):
        a = VectorClock({0: 2, 1: 5})
        b = VectorClock({1: 3, 2: 7})
        a.join(b)
        assert a == VectorClock({0: 2, 1: 5, 2: 7})

    def test_copy_is_independent(self):
        a = VectorClock({0: 1})
        b = a.copy()
        b.tick(0)
        assert a.get(0) == 1
        assert b.get(0) == 2

    def test_repr_sorted(self):
        assert repr(VectorClock({2: 1, 0: 3})) == "VectorClock({0: 3, 2: 1})"


class TestDetectorUnit:
    """Detector logic with synthetic events (no machine)."""

    def page(self, n):
        return n * PAGE_SIZE

    def test_same_cpu_never_races(self):
        det = LogRaceDetector()
        det.logged_run(0, self.page(1), 4, cycle=10)
        det.logged_run(0, self.page(1) + 8, 4, cycle=20)
        assert det.races_seen == 0

    def test_unsynchronized_cross_cpu_same_page_races(self):
        det = LogRaceDetector()
        det.logged_run(0, self.page(1), 4, cycle=10)
        det.logged_run(1, self.page(1) + 64, 4, cycle=12)
        assert det.races_seen == 1
        (report,) = det.reports
        assert isinstance(report, RaceReport)
        assert report.page == 1
        assert (report.prev_cpu, report.cpu) == (0, 1)
        assert "no happens-before edge" in str(report)

    def test_different_pages_do_not_race(self):
        det = LogRaceDetector()
        det.logged_run(0, self.page(1), 4, cycle=10)
        det.logged_run(1, self.page(2), 4, cycle=12)
        assert det.races_seen == 0

    def test_run_spanning_pages_checks_each(self):
        det = LogRaceDetector()
        det.logged_run(0, self.page(1), 4, cycle=10)
        det.logged_run(0, self.page(2), 4, cycle=11)
        # One run from cpu1 covering both pages -> two race pairs.
        det.logged_run(1, self.page(1), 2 * PAGE_SIZE, cycle=20)
        assert det.races_seen == 2
        assert {r.page for r in det.reports} == {1, 2}

    def test_message_edge_orders_writes(self):
        det = LogRaceDetector()
        det.logged_run(0, self.page(1), 4, cycle=10)
        det.msg_send(0, token=1234)
        det.msg_recv(1, token=1234)
        det.logged_run(1, self.page(1) + 32, 4, cycle=50)
        assert det.races_seen == 0

    def test_unmatched_receive_is_no_edge(self):
        det = LogRaceDetector()
        det.logged_run(0, self.page(1), 4, cycle=10)
        det.msg_recv(1, token=999)  # nothing was sent under this token
        det.logged_run(1, self.page(1) + 32, 4, cycle=50)
        assert det.races_seen == 1

    def test_global_sync_orders_writes(self):
        det = LogRaceDetector()
        det.logged_run(0, self.page(1), 4, cycle=10)
        det.global_sync()
        det.logged_run(1, self.page(1) + 32, 4, cycle=50)
        assert det.races_seen == 0

    def test_first_write_after_barrier_is_ordered(self):
        # Regression: a CPU whose first event comes after a global
        # barrier must inherit the barrier clock, not start empty.
        det = LogRaceDetector()
        det.logged_run(0, self.page(1), 4, cycle=10)
        det.global_sync()
        det.logged_run(5, self.page(1) + 16, 4, cycle=60)
        assert det.races_seen == 0

    def test_race_after_sync_still_detected(self):
        det = LogRaceDetector()
        det.logged_run(0, self.page(1), 4, cycle=10)
        det.global_sync()
        det.logged_run(0, self.page(1), 4, cycle=20)
        det.logged_run(1, self.page(1) + 8, 4, cycle=21)
        assert det.races_seen == 1

    def test_max_reports_caps_list_not_count(self):
        det = LogRaceDetector(max_reports=2)
        for i in range(5):
            det.logged_run(0, self.page(1), 4, cycle=10 + i)
            det.logged_run(1, self.page(1) + 8, 4, cycle=100 + i)
        assert len(det.reports) == 2
        assert det.races_seen > 2
        assert "more" in det.summary()

    def test_page_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            LogRaceDetector(page_size=3000)

    def test_install_is_exclusive(self):
        with fresh_detector():
            with pytest.raises(RuntimeError):
                race.install(LogRaceDetector())


@pytest.fixture
def smp_machine():
    machine = boot(MachineConfig(num_cpus=2, memory_bytes=32 * 1024 * 1024))
    yield machine
    set_current_machine(None)


def shared_logged_page(machine):
    """A logged region bound once, writable from both CPUs."""
    proc0 = machine.current_process
    seg = StdSegment(PAGE_SIZE, machine=machine)
    region = StdRegion(seg)
    log = LogSegment(machine=machine)
    region.log(log)
    va = region.bind(proc0.address_space())
    proc1 = Process(machine, cpu_index=1, address_space=proc0.address_space())
    return proc0, proc1, va, log


class TestMachineWiring:
    def test_seeded_cross_cpu_race_is_flagged(self, smp_machine):
        with use_machine(smp_machine):
            proc0, proc1, va, _ = shared_logged_page(smp_machine)
            with fresh_detector() as det:
                proc0.write(va, 0x1111)
                proc1.write(va + 8, 0x2222)
                smp_machine.quiesce()
        assert det.races_seen == 1
        (report,) = det.reports
        assert {report.prev_cpu, report.cpu} == {0, 1}

    def test_quiesce_between_writes_is_clean(self, smp_machine):
        with use_machine(smp_machine):
            proc0, proc1, va, _ = shared_logged_page(smp_machine)
            with fresh_detector() as det:
                proc0.write(va, 0x1111)
                smp_machine.quiesce()
                proc1.write(va + 8, 0x2222)
                smp_machine.quiesce()
        assert det.races_seen == 0

    def test_unlogged_writes_are_not_tracked(self, smp_machine):
        with use_machine(smp_machine):
            proc0 = smp_machine.current_process
            seg = StdSegment(PAGE_SIZE, machine=smp_machine)
            region = StdRegion(seg)  # never .log()ed
            va = region.bind(proc0.address_space())
            proc1 = Process(
                smp_machine, cpu_index=1, address_space=proc0.address_space()
            )
            with fresh_detector() as det:
                proc0.write(va, 0x1111)
                proc1.write(va + 8, 0x2222)
                smp_machine.quiesce()
        assert det.writes_checked == 0
        assert det.races_seen == 0

    def test_fused_bulk_path_reports_runs(self):
        from repro.obs.workloads import run_copy

        with fresh_detector() as det:
            run_copy()
        assert det.writes_checked > 0
        assert det.races_seen == 0


class TestCannedWorkloads:
    def test_copy_workload_is_race_free(self):
        from repro.obs.workloads import run_copy

        with fresh_detector() as det:
            summary = run_copy()
        assert det.races_seen == 0, det.summary()
        # Observing must not perturb the cycle domain.
        assert summary["cycles"] == COPY_GOLDEN["cycles"]
        assert summary["records_logged"] == COPY_GOLDEN["records_logged"]

    def test_timewarp_workload_is_race_free(self):
        from repro.obs.workloads import run_timewarp

        with fresh_detector() as det:
            summary = run_timewarp()
        assert det.races_seen == 0, det.summary()
        assert det.writes_checked > 0
        assert summary["cycles"] == TIMEWARP_GOLDEN["cycles"]
        machine = summary["machine"]
        assert (
            machine.logger.stats.records_logged == TIMEWARP_GOLDEN["records"]
        )


class TestSanitizedOffIdentity:
    """With no detector installed, the hooks must be invisible."""

    def test_copy_cycle_and_log_record_identical(self):
        from repro.obs.workloads import run_copy

        race.uninstall()
        baseline = run_copy()
        assert baseline["cycles"] == COPY_GOLDEN["cycles"]
        assert (
            baseline["records_logged"] == COPY_GOLDEN["records_logged"]
        )
        baseline_records = [
            (r.addr, r.value, r.timestamp) for r in baseline["log"].records()
        ]
        with fresh_detector():
            sanitized = run_copy()
        sanitized_records = [
            (r.addr, r.value, r.timestamp) for r in sanitized["log"].records()
        ]
        # Cycle- and log-record-identical, detector on or off.
        assert sanitized["cycles"] == baseline["cycles"]
        assert sanitized_records == baseline_records

    def test_timewarp_cycle_identical(self):
        from repro.obs.workloads import run_timewarp

        race.uninstall()
        baseline = run_timewarp()
        assert baseline["cycles"] == TIMEWARP_GOLDEN["cycles"]
        records = baseline["machine"].logger.stats.records_logged
        assert records == TIMEWARP_GOLDEN["records"]
        with fresh_detector():
            sanitized = run_timewarp()
        assert sanitized["cycles"] == baseline["cycles"]
        assert (
            sanitized["machine"].logger.stats.records_logged == records
        )


class TestCli:
    def test_race_cli_clean_on_canned_workloads(self, capsys):
        from repro.sanitize.cli import race_main

        # The CLI installs its own detector per workload; shelve any
        # ambient --lvm-san one for the duration of the call.
        previous = race.active()
        race.uninstall()
        try:
            assert race_main(["copy"]) == 0
        finally:
            if previous is not None:
                race.install(previous)
        out = capsys.readouterr().out
        assert "0 race(s)" in out
