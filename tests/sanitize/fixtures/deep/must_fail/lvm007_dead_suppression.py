"""Seeded violation: a suppression whose diagnostic no longer fires."""

total = 1 + 1  # lvm-san: ignore[LVM003]
