"""Seeded violation: the ack races the buffered commit record."""


class Disk:
    def write(self, rec):
        pass

    def flush(self):
        pass


class Srv:
    def __init__(self):
        self.disk = Disk()

    def commit_ack(self, rec, fut):
        self.disk.write(rec)
        fut.set_result(True)  # acked while the record may still be buffered
