"""Seeded violation: a helper's wall-clock return flows into cycles."""

import time


def wall_now():
    return time.time()


def deadline(cycle_count):
    return cycle_count + wall_now()  # cycles plus seconds, via the call
