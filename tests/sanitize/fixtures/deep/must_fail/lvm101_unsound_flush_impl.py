"""Seeded violation: a flush() that leaves its own write buffered."""


class Dev:
    def write(self, rec):
        pass


class Wrapper:
    def __init__(self):
        self.device = Dev()

    def flush(self):
        self.device.write(b"tail")  # the tail write is never made durable
