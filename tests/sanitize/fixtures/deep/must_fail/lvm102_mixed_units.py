"""Seeded violation: wall-clock seconds subtracted from cycle counts."""

import time


def elapsed(start_cycles):
    wall = time.time()
    return wall - start_cycles  # seconds minus cycles
