"""Seeded violation: state mutation inside an _ACTIVE gate."""


def traced(tracer, obj):
    t = tracer._ACTIVE
    if t is not None:
        obj.count += 1  # traced and bare runs now diverge
