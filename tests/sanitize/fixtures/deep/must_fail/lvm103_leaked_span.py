"""Seeded violation: an early return leaks the dispatch span."""


def handler(obs, req):
    obs.stage_enter("dispatch")
    if req is None:
        return None  # leaves the span open on a normal path
    obs.stage_exit("dispatch")
    return req
