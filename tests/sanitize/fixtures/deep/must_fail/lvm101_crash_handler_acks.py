"""Seeded violation: a CrashPoint handler that acknowledges clients."""


class CrashPoint(Exception):
    pass


class Srv:
    def _ack(self, fut):
        fut.set_result(True)

    def step(self):
        pass

    def serve(self, fut):
        try:
            self.step()
        except CrashPoint:
            self._ack(fut)  # a crashed server must never ack
