"""Conforming twin: dividing across domains produces a rate, not a mix."""


def throughput(total_cycles, wall_secs):
    return total_cycles / wall_secs


def mean_cost(total_cycles, count):
    return total_cycles // max(1, count)
