"""Conforming twin: the span closes on every path via finally."""


def handler(obs, req):
    obs.stage_enter("dispatch")
    try:
        return process(req)
    finally:
        obs.stage_exit("dispatch")


def process(req):
    return req
