"""Conforming twin: flush + barrier dominate the acknowledgement."""


class Disk:
    def write(self, rec):
        pass

    def flush(self):
        pass

    def barrier(self):
        pass


class Srv:
    def __init__(self):
        self.disk = Disk()

    def commit_ack(self, rec, fut):
        self.disk.write(rec)
        self.disk.flush()
        self.disk.barrier()
        fut.set_result(True)
