"""Fixture registry: ``fx.orphan`` is registered but unreachable."""

from __future__ import annotations

SITES: dict[str, tuple[str, ...]] = {
    "fx.live": ("repro/faults/extra.py",),
    "fx.orphan": ("repro/faults/extra.py",),
}

ALL_SITES: frozenset[str] = frozenset(SITES)
