"""Fixture code: one live site, one behind an uncalled private helper."""

SITE_LIVE = "fx.live"
SITE_ORPHAN = "fx.orphan"


def _hidden(plan):
    # No public caller reaches this, so the sweep can never fire it.
    plan.hit(SITE_ORPHAN)


def run(plan):
    plan.hit(SITE_LIVE)
