"""Edge cases: the DSM substrate itself."""

import pytest

from repro.errors import LVMError
from repro.consistency import DsmNode, LogBasedProtocol, MuninProtocol
from repro.consistency.dsm import MESSAGE_OVERHEAD_CYCLES
from repro.core.process import create_process
from repro.hw.params import PAGE_SIZE


def nodes(machine, sizes=(PAGE_SIZE, PAGE_SIZE)):
    writer = DsmNode(0, machine.current_process, sizes[0])
    consumer = DsmNode(1, create_process(machine, 1), sizes[1])
    return writer, consumer


class TestDsmSubstrate:
    def test_size_mismatch_rejected(self, machine):
        writer, _ = nodes(machine)
        bad = DsmNode(2, create_process(machine, 2), 2 * PAGE_SIZE)
        with pytest.raises(LVMError):
            MuninProtocol(writer, [bad])

    def test_double_acquire_rejected(self, machine):
        writer, consumer = nodes(machine)
        p = LogBasedProtocol(writer, [consumer])
        p.acquire()
        with pytest.raises(LVMError):
            p.acquire()

    def test_stats_accumulate_across_sections(self, machine):
        writer, consumer = nodes(machine)
        p = LogBasedProtocol(writer, [consumer], streaming=False)
        for round_ in range(3):
            p.acquire()
            p.write(4 * round_, round_ + 1)
            p.release()
        assert p.stats.messages == 3
        assert p.stats.bytes_sent == 3 * 8
        assert p.records_sent == 3

    def test_transmit_charges_message_overhead(self, machine):
        writer, consumer = nodes(machine)
        p = LogBasedProtocol(writer, [consumer], streaming=False)
        p.acquire()
        p.write(0, 1)
        t0 = writer.proc.now
        p.release()
        assert writer.proc.now - t0 >= MESSAGE_OVERHEAD_CYCLES

    def test_consumer_reads_through_its_own_mapping(self, machine):
        writer, consumer = nodes(machine)
        p = MuninProtocol(writer, [consumer])
        p.acquire()
        p.write(0x40, 77)
        p.release()
        assert consumer.read(0x40) == 77

    def test_multiple_consumers_all_updated(self, machine):
        writer = DsmNode(0, machine.current_process, PAGE_SIZE)
        consumers = [
            DsmNode(i + 1, create_process(machine, (i + 1) % 4), PAGE_SIZE)
            for i in range(3)
        ]
        p = LogBasedProtocol(writer, consumers)
        p.acquire()
        p.write(8, 5)
        p.release()
        assert all(c.read(8) == 5 for c in consumers)
        assert p.consistent()
