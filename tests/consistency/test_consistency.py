"""Tests: Munin twin/diff vs log-based consistency (section 2.6)."""

import pytest

from repro.errors import LVMError
from repro.consistency import DsmNode, LogBasedProtocol, MuninProtocol
from repro.core.process import create_process
from repro.hw.params import PAGE_SIZE


def make_nodes(machine, n_consumers=2, size=2 * PAGE_SIZE):
    writer = DsmNode(0, machine.current_process, size)
    consumers = [
        DsmNode(i + 1, create_process(machine, cpu_index=(i + 1) % len(machine.cpus)), size)
        for i in range(n_consumers)
    ]
    return writer, consumers


def run_section(protocol, writes):
    protocol.acquire()
    for offset, value in writes:
        protocol.write(offset, value)
    protocol.release()


@pytest.fixture(params=["munin", "log", "log-nostream"])
def protocol(request, machine):
    writer, consumers = make_nodes(machine)
    if request.param == "munin":
        return MuninProtocol(writer, consumers)
    streaming = request.param == "log"
    return LogBasedProtocol(writer, consumers, streaming=streaming)


class TestBothProtocols:
    def test_consumers_converge(self, protocol):
        run_section(protocol, [(0, 1), (64, 2), (PAGE_SIZE + 8, 3)])
        assert protocol.consistent()
        assert protocol.consumers[0].read(64) == 2

    def test_multiple_sections(self, protocol):
        run_section(protocol, [(0, 1)])
        run_section(protocol, [(0, 9), (128, 5)])
        assert protocol.consistent()
        assert protocol.consumers[-1].read(0) == 9

    def test_write_outside_lock_rejected(self, protocol):
        with pytest.raises(LVMError):
            protocol.write(0, 1)

    def test_release_without_acquire_rejected(self, protocol):
        with pytest.raises(LVMError):
            protocol.release()

    def test_empty_section_sends_nothing(self, protocol):
        protocol.acquire()
        protocol.release()
        assert protocol.stats.bytes_sent == 0


class TestProtocolDifferences:
    def test_log_based_sends_only_updated_words(self, machine):
        """Sparse updates: log-based traffic ≪ a page, and equal to the
        number of writes; Munin diff also finds just the words but pays
        the twin/compare."""
        writer, consumers = make_nodes(machine)
        log = LogBasedProtocol(writer, consumers, streaming=False)
        run_section(log, [(0, 1), (512, 2)])
        assert log.stats.bytes_sent == 2 * 8  # 2 updates x (offset+word)

        writer2, consumers2 = make_nodes(machine)
        munin = MuninProtocol(writer2, consumers2)
        run_section(munin, [(0, 1), (512, 2)])
        assert munin.stats.bytes_sent == 2 * 8
        assert munin.words_compared == PAGE_SIZE // 4

    def test_lvm_resends_repeated_writes_munin_does_not(self, machine):
        """The paper's caveat: repeated writes inflate LVM traffic."""
        writes = [(0, v) for v in range(20)]
        writer, consumers = make_nodes(machine)
        log = LogBasedProtocol(writer, consumers, streaming=False)
        run_section(log, writes)

        writer2, consumers2 = make_nodes(machine)
        munin = MuninProtocol(writer2, consumers2)
        run_section(munin, writes)

        assert log.stats.bytes_sent > munin.stats.bytes_sent
        assert munin.stats.bytes_sent == 8  # final value only

    def test_streaming_cuts_release_latency(self, machine):
        """Section 2.6: streaming leaves little or no release backlog."""
        writes = [(4 * i, i) for i in range(200)]

        writer, consumers = make_nodes(machine)
        streamed = LogBasedProtocol(writer, consumers, streaming=True)
        run_section(streamed, writes)

        writer2, consumers2 = make_nodes(machine)
        deferred = LogBasedProtocol(writer2, consumers2, streaming=False)
        run_section(deferred, writes)

        assert streamed.stats.release_cycles < deferred.stats.release_cycles / 2
        assert streamed.consistent() and deferred.consistent()

    def test_munin_faults_once_per_page(self, machine):
        writer, consumers = make_nodes(machine)
        munin = MuninProtocol(writer, consumers)
        run_section(
            munin, [(0, 1), (4, 2), (PAGE_SIZE, 3), (PAGE_SIZE + 4, 4)]
        )
        assert munin.fault_count == 2

    def test_log_based_writer_overhead_lower_in_section(self, machine):
        """LVM removes the trap/twin cost from the writer's section."""
        writes = [(4 * i, i) for i in range(8)]

        writer, consumers = make_nodes(machine)
        log = LogBasedProtocol(writer, consumers, streaming=False)
        t0 = writer.proc.now
        run_section(log, writes)
        log_section = writer.proc.now - t0 - log.stats.release_cycles

        writer2, consumers2 = make_nodes(machine)
        munin = MuninProtocol(writer2, consumers2)
        t0 = writer2.proc.now
        run_section(munin, writes)
        munin_section = writer2.proc.now - t0 - munin.stats.release_cycles

        assert log_section < munin_section
