"""CLI satellites: ``python -m repro analyze`` and the trace CLI's
``--metrics-json`` registry dump (with counter-track validation)."""

from __future__ import annotations

import json

import pytest

from repro.analytics.cli import main as analyze_main
from repro.obs.cli import main as trace_main
from repro.obs.trace import TraceFormatError, validate_trace
from repro.obs.workloads import COPY_BYTES


EXPECTED_COPY_RECORDS = COPY_BYTES // 4  # one record per word written


class TestAnalyzeCli:
    def test_report_copy_with_json(self, tmp_path, capsys):
        out = tmp_path / "wss_report.json"
        assert analyze_main(["report", "copy", "--json", str(out)]) == 0
        printed = capsys.readouterr().out
        assert f"consumed : {EXPECTED_COPY_RECORDS} records" in printed
        assert "wss curve" in printed
        assert "hottest pages" in printed

        doc = json.loads(out.read_text())
        assert doc["workload"] == "copy"
        assert doc["records_consumed"] == EXPECTED_COPY_RECORDS
        (tap,) = doc["taps"]
        assert tap["stats"]["record_count"] == EXPECTED_COPY_RECORDS
        assert tap["stats"]["pages_touched"] == COPY_BYTES // 4096
        assert len(tap["wss_curve"]) == EXPECTED_COPY_RECORDS // doc["wss_window"]
        assert tap["heat_top"]

    def test_report_honours_window(self, tmp_path):
        out = tmp_path / "r.json"
        analyze_main(["report", "copy", "--window", "256", "--json", str(out)])
        doc = json.loads(out.read_text())
        assert doc["wss_window"] == 256
        assert len(doc["taps"][0]["wss_curve"]) == EXPECTED_COPY_RECORDS // 256

    def test_watch_prints_live_samples(self, capsys):
        assert analyze_main(["watch", "copy", "--every", "1000"]) == 0
        printed = capsys.readouterr().out
        sample_lines = [l for l in printed.splitlines() if "cyc]" in l]
        assert sample_lines, printed
        assert "wss=" in sample_lines[0]

    def test_wal_workload_reports_no_hardware_logs(self, capsys):
        assert analyze_main(["report", "rvm"]) == 0
        printed = capsys.readouterr().out
        assert "no logged segments observed" in printed


class TestTraceMetricsJson:
    def test_metrics_json_dumps_the_registry(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        registry = tmp_path / "metrics.json"
        assert (
            trace_main(
                [
                    "copy",
                    "--out",
                    str(tmp_path / "trace.json"),
                    "--metrics-json",
                    str(registry),
                    "--no-profile",
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert f"registry : {registry}" in printed

        snap = json.loads(registry.read_text())
        assert {"counters", "gauges", "histograms"} <= set(snap)
        assert snap["counters"]["core.bulk.write_runs_slow"] > 0
        assert snap["gauges"]["hw.cpu.stores"] > 0

        # The written trace passes validation, including its counter
        # tracks (one closing sample per registry counter).
        doc = json.loads((tmp_path / "trace.json").read_text())
        assert validate_trace(doc) == len(doc["traceEvents"])
        counters = [ev for ev in doc["traceEvents"] if ev["ph"] == "C"]
        assert any(ev["name"] == "machine.cycles" for ev in counters)


class TestValidateTraceCounterEvents:
    def base(self, **overrides):
        ev = {
            "ph": "C",
            "cat": "metrics",
            "name": "x",
            "ts": 1,
            "pid": 0,
            "tid": 0,
            "args": {"x": 1},
        }
        ev.update(overrides)
        return {"traceEvents": [ev]}

    def test_well_formed_counter_event_passes(self):
        assert validate_trace(self.base()) == 1

    def test_counter_event_needs_args(self):
        with pytest.raises(TraceFormatError, match="non-empty dict 'args'"):
            validate_trace(self.base(args={}))

    def test_counter_series_must_be_numeric(self):
        with pytest.raises(TraceFormatError, match="must be numeric"):
            validate_trace(self.base(args={"x": "high"}))
        with pytest.raises(TraceFormatError, match="must be numeric"):
            validate_trace(self.base(args={"x": True}))
