"""Golden agreement: the streaming estimator over a full log must
reproduce the offline :mod:`repro.analysis` results exactly, on the
same canned workloads the CI obs job runs."""

from __future__ import annotations

from repro.analysis.locality import working_set_curve
from repro.analysis.logstats import compute_stats
from repro.analysis.redundancy import analyse
from repro.analytics.core import RedundancyFold, StatsFold
from repro.analytics.stream import LogTap
from repro.obs.workloads import run_workload


def assert_stream_matches_offline(log, window=64):
    records = list(log.records())
    stats = compute_stats(records)
    tap = LogTap(log, window=window)
    consumed = tap.advance()

    assert consumed == stats.record_count
    assert tap.stats.record_count == stats.record_count
    assert tap.stats.bytes_logged == stats.bytes_logged
    assert tap.stats.data_bytes_written == stats.data_bytes_written
    assert tap.stats.duration_timestamps == stats.duration_timestamps
    assert tap.stats.pages_touched == stats.pages_touched
    assert dict(tap.stats.writes_per_page) == stats.writes_per_page
    assert tap.wss.curve() == working_set_curve(records, window=window)
    # Heat covers exactly the pages the offline histogram knows about.
    assert set(tap.heat._heat) == set(stats.writes_per_page)
    return stats


class TestGoldenCopy:
    def test_streaming_matches_logstats_on_copy(self):
        summary = run_workload("copy")
        stats = assert_stream_matches_offline(summary["log"])
        assert stats.record_count == summary["records_logged"]
        assert stats.data_bytes_written == summary["bytes_written"]


class TestGoldenRlvm:
    def test_streaming_matches_logstats_on_rlvm_transactions(self, machine, proc):
        from repro.rvm.rlvm import RLVM

        # Every RLVM commit/abort truncates the segment log, so the
        # offline reference is the record stream accumulated per
        # transaction *before* each truncation — which is exactly what
        # the live tap folds incrementally.
        lib = RLVM(proc)
        base = lib.map("bank", 16 * 1024)
        log = lib.segments["bank"].log
        live = LogTap(log, window=4)
        stream_records = []
        for i in range(8):
            txn = lib.begin()
            va = base + 96 * i
            txn.write(va, 0xBEEF0000 + i)
            txn.write(va + 4, i)
            txn.write(va, 0xC0FFEE00 + i)  # redundant rewrite
            machine.quiesce()
            stream_records.extend(log.records())
            live.advance()
            if i % 4 == 3:
                txn.abort()
            else:
                txn.commit(flush=(i % 2 == 0))

        stats = compute_stats(stream_records)
        assert stats.record_count == len(stream_records) > 0
        assert live.stats.record_count == stats.record_count
        assert live.stats.data_bytes_written == stats.data_bytes_written
        assert live.stats.duration_timestamps == stats.duration_timestamps
        assert dict(live.stats.writes_per_page) == stats.writes_per_page
        assert live.wss.curve() == working_set_curve(stream_records, window=4)

        # Redundancy: the shared fold reproduces the offline report.
        fold = RedundancyFold()
        for record in stream_records:
            fold.fold(record)
        report = analyse(stream_records)
        assert fold.total_writes == report.total_writes
        assert fold.unique_locations == report.unique_locations
        assert fold.redundant_writes == report.redundant_writes
        assert report.redundant_writes > 0  # the rewrites are visible


class _NoCult:
    """A CULT policy that always defers, so logs are never truncated."""

    def should_run(self, lvt, gvt, log_bytes):
        return False


class TestGoldenTimewarp:
    def test_streaming_matches_logstats_on_timewarp(self, machine):
        from repro.timewarp.kernel import TimeWarpSimulation
        from repro.timewarp.state_saving import LVMStateSaver
        from repro.timewarp.workloads import SyntheticModel

        # Mirrors obs.workloads.run_timewarp, but keeps the simulation
        # object (so the savers' logs stay reachable) and defers CULT
        # (so the full record stream is retained for the offline fold).
        model = SyntheticModel(c=400, s=256, w=8, num_objects=8)
        sim = TimeWarpSimulation(
            model,
            end_time=60,
            n_schedulers=2,
            machine=machine,
            saver_factory=lambda: LVMStateSaver(cult_policy=_NoCult()),
        )
        result = sim.run()
        assert result.rollbacks > 0  # the interesting case: rewound logs

        total = StatsFold()
        for scheduler in sim.schedulers:
            log = scheduler.saver.log
            stats = assert_stream_matches_offline(log, window=16)
            total.fold_page_counts(
                stats.writes_per_page,
                stats.record_count,
                stats.data_bytes_written,
                0,
                0,
            )
        assert total.record_count > 0

    def test_live_taps_see_every_logged_record_despite_truncation(
        self, machine
    ):
        from repro.analytics import stream as anstream
        from repro.analytics.stream import AnalyticsHub
        from repro.timewarp.kernel import TimeWarpSimulation
        from repro.timewarp.workloads import SyntheticModel

        # Default savers truncate at every checkpoint advance, but taps
        # attached at bind time consume at each drain — ahead of both
        # rewinds and truncations — so the streamed totals equal the
        # hardware logger's append counter for the whole run.
        hub = AnalyticsHub()
        with anstream.installed(hub):
            model = SyntheticModel(c=400, s=256, w=8, num_objects=8)
            sim = TimeWarpSimulation(
                model,
                end_time=60,
                saver="lvm",
                n_schedulers=2,
                machine=machine,
            )
            result = sim.run()
            machine.quiesce()
            hub.notify(machine.clock.now)
        assert result.rollbacks > 0
        streamed = sum(tap.stats.record_count for tap in hub.taps)
        assert streamed == machine.logger.stats.records_logged
