"""Unit tests for the two log-driven policy loops.

CheckpointTuner: the closed-loop interval ``n* = sqrt(S / (r * k * A))``
with ``k`` measured from actual roll-forward record counts, falling
back to the classical Lin-Lazowska ``w / 2`` replay-length prior.

TruncationAdvisor: log-growth forecasting against the backend device's
truncation cost model.
"""

from __future__ import annotations

import math

import pytest

from repro.analytics.policy import CheckpointTuner, TruncationAdvisor
from repro.backends.base import BLOCK_BYTES


def feed(tuner, events, rollbacks):
    for _ in range(events):
        tuner.note_event()
    for _ in range(rollbacks):
        tuner.note_rollback()


class TestCheckpointTuner:
    def make(self, **kwargs):
        defaults = dict(
            snapshot_cost=1000,
            apply_record_cost=10,
            min_interval=2,
            max_interval=512,
            alpha=1.0,  # EWMA == last sample: exact arithmetic below
            initial_interval=16,
        )
        defaults.update(kwargs)
        return CheckpointTuner(**defaults)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            CheckpointTuner(0, 10)
        with pytest.raises(ValueError):
            CheckpointTuner(100, 0)
        with pytest.raises(ValueError):
            CheckpointTuner(100, 10, min_interval=8, max_interval=4)

    def test_initial_interval_is_clamped(self):
        assert self.make(initial_interval=10_000).interval == 512
        assert self.make(initial_interval=1).interval == 2
        assert CheckpointTuner(100, 10).interval == 512  # default: max

    def test_prior_path_reduces_to_lin_lazowska(self):
        tuner = self.make()
        feed(tuner, events=10, rollbacks=2)
        interval = tuner.retune(records_seen=40)  # w = 4 writes/event
        r, w = 2 / 10, 40 / 10
        classical = math.sqrt(
            2 * 1000 / (r * w * 10)
        )  # sqrt(2S / (r w A))
        assert interval == int(round(classical)) == 16
        assert tuner.rollback_rate.value == r
        assert tuner.redirty_rate.value == w

    def test_measured_replay_overrides_the_prior(self):
        tuner = self.make()
        feed(tuner, events=10, rollbacks=2)
        tuner.retune(records_seen=40, replayed_records=0)
        assert tuner.interval == 16
        # Real roll-forwards replay far more than n/2 * w records
        # (undone-future snapshots pop, re-executed events re-log):
        # 2 rollbacks at interval 16 replayed 640 records -> k = 20.
        feed(tuner, events=10, rollbacks=2)
        interval = tuner.retune(records_seen=80, replayed_records=640)
        assert tuner.replay_per_interval.value == 640 / 2 / 16
        assert interval == int(round(math.sqrt(1000 / (0.2 * 20.0 * 10)))) == 5

    def test_no_rollbacks_stretches_to_the_ceiling(self):
        tuner = self.make()
        feed(tuner, events=10, rollbacks=0)
        assert tuner.retune(records_seen=40) == 512
        # And with rollbacks but no logged writes at all, the replay
        # term is unknown: same answer.
        tuner = self.make()
        feed(tuner, events=10, rollbacks=5)
        assert tuner.retune(records_seen=0) == 512

    def test_interval_is_clamped_both_ways(self):
        storm = self.make(snapshot_cost=1)
        feed(storm, events=4, rollbacks=4)
        assert storm.retune(records_seen=400) == 2  # n* << min
        calm = self.make(snapshot_cost=10**9)
        feed(calm, events=100, rollbacks=1)
        assert calm.retune(records_seen=100) == 512  # n* >> max

    def test_empty_window_retune_keeps_rates(self):
        tuner = self.make()
        feed(tuner, events=10, rollbacks=2)
        tuner.retune(records_seen=40)
        before = (tuner.rollback_rate.value, tuner.redirty_rate.value)
        interval = tuner.retune(records_seen=40)  # no events since
        assert (tuner.rollback_rate.value, tuner.redirty_rate.value) == before
        assert interval == tuner.interval
        assert tuner.retunes == 2


class FakeWal:
    def __init__(self, tail=0, capacity=0):
        self.tail = tail
        self.capacity = capacity


class FakeDisk:
    def __init__(self, op_overhead_cycles=1000, per_block_cycles=50, size=1 << 20):
        self.op_overhead_cycles = op_overhead_cycles
        self.per_block_cycles = per_block_cycles
        self.size = size


class FakeProc:
    def __init__(self):
        self.now = 0


class FakeLib:
    def __init__(self, disk=None, capacity=1 << 20):
        self.wal = FakeWal(capacity=capacity)
        self.disk = disk if disk is not None else FakeDisk()
        self.proc = FakeProc()


class TestTruncationAdvisor:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            TruncationAdvisor(fill_trigger=0.0)
        with pytest.raises(ValueError):
            TruncationAdvisor(fill_trigger=1.5)
        with pytest.raises(ValueError):
            TruncationAdvisor(cost_ratio=0.0)

    def test_device_cost_model(self):
        lib = FakeLib()
        advisor = TruncationAdvisor()
        assert advisor.estimate_truncate_cost(lib) == 4 * 1000 + 50 * 1
        lib.wal.tail = 3 * BLOCK_BYTES
        assert advisor.estimate_truncate_cost(lib) == 4 * 1000 + 50 * 4
        assert advisor.replay_exposure_cost(lib) == 1000 + 50 * 3
        lib.wal.tail = 3 * BLOCK_BYTES + 1  # partial block rounds up
        assert advisor.replay_exposure_cost(lib) == 1000 + 50 * 4

    def test_cost_model_chases_group_commit_wrappers(self):
        class Wrapper:
            def __init__(self, inner):
                self.inner = inner

        lib = FakeLib()
        lib.disk = Wrapper(Wrapper(FakeDisk(op_overhead_cycles=7,
                                            per_block_cycles=3)))
        advisor = TruncationAdvisor()
        lib.wal.tail = BLOCK_BYTES
        assert advisor.estimate_truncate_cost(lib) == 4 * 7 + 3 * 2

        lib.disk = object()  # no cost model anywhere: free device
        assert advisor.estimate_truncate_cost(lib) == 0

    def test_empty_log_never_truncates(self):
        advisor = TruncationAdvisor()
        assert not advisor.should_truncate(FakeLib())

    def test_fill_trigger_fires(self):
        lib = FakeLib(capacity=1000)
        advisor = TruncationAdvisor(fill_trigger=0.5, cost_ratio=1e9)
        lib.wal.tail = 499
        assert not advisor.should_truncate(lib)
        lib.wal.tail = 500
        assert advisor.should_truncate(lib)

    def test_replay_exposure_fires_when_tail_outgrows_overhead(self):
        # op overhead dominates while the tail is short; per-block scan
        # cost makes replay exposure approach the truncate cost as the
        # tail grows, crossing cost_ratio * truncate_cost.
        lib = FakeLib(disk=FakeDisk(op_overhead_cycles=10_000,
                                    per_block_cycles=100))
        advisor = TruncationAdvisor(fill_trigger=1.0, cost_ratio=0.5)
        lib.wal.tail = BLOCK_BYTES
        assert not advisor.should_truncate(lib)
        lib.wal.tail = 400 * BLOCK_BYTES
        # replay = 10_000 + 40_000 >= 0.5 * (40_000 + 40_100)
        assert advisor.should_truncate(lib)

    def test_growth_forecast_and_eta(self):
        lib = FakeLib(capacity=10_000)
        advisor = TruncationAdvisor(fill_trigger=0.5, alpha=1.0)
        assert advisor.eta_to_fill(lib) is None  # no growth observed
        for step in range(1, 5):
            lib.wal.tail = step * 100
            lib.proc.now = step * 1000
            advisor.observe(lib)
        # 100 bytes per 1000 ticks -> 0.1 bytes/tick; 4600 to trigger.
        rate = advisor.growth.bytes_per_tick.value
        assert rate == pytest.approx(0.1)
        assert advisor.eta_to_fill(lib) == pytest.approx((5000 - 400) / rate)

    def test_observe_survives_a_truncation_reset(self):
        lib = FakeLib()
        advisor = TruncationAdvisor()
        lib.wal.tail = 500
        lib.proc.now = 100
        advisor.observe(lib)
        lib.wal.tail = 64  # truncated under us, then regrew
        lib.proc.now = 200
        advisor.observe(lib)
        assert advisor.growth.total_bytes == 500 + 64
        assert advisor._last_tail == 64

    def test_rebuild_reseeds_from_the_durable_tail(self):
        lib = FakeLib()
        lib.wal.tail = 777
        lib.proc.now = 42
        advisor = TruncationAdvisor.rebuild(lib, fill_trigger=0.25)
        assert advisor._last_tail == 777
        assert advisor.fill_trigger == 0.25
        assert advisor.growth.total_bytes == 0  # EWMA re-primes fresh

    def test_drives_real_rvm_truncation(self, machine, proc):
        from repro.rvm.rvm import RVM

        lib = RVM(proc)
        base = lib.map("bank", 8 * 1024)
        lib.truncation_advisor = TruncationAdvisor(
            fill_trigger=1.0, cost_ratio=1e-9
        )
        assert not lib.maybe_truncate()  # nothing logged yet
        txn = lib.begin()
        txn.set_range(base, 16)
        txn.write(base, 0xDEAD)
        txn.commit(flush=True)
        assert lib.wal.tail > 0
        assert lib.maybe_truncate()
        assert lib.wal.tail == 0
        assert lib.truncation_advisor.truncations_advised == 1
        assert not lib.maybe_truncate()  # empty again
