"""Acceptance: an analytics-attached run is cycle- and log-record-
identical to an unattached one.

The tap's reads are untimed functional reads and its hooks are gated
one-``None``-check branches, so attaching a hub (with or without an
observability export target) must change *nothing* the simulated
machine computes — not the cycle count, not a single log record.
"""

from __future__ import annotations

import pytest

from repro.analytics import stream as anstream
from repro.analytics.stream import AnalyticsHub
from repro.obs.core import Observability, installed as obs_installed
from repro.obs.workloads import WORKLOADS, run_workload


def summary_fingerprint(summary):
    """Everything deterministic a workload reports, plus the log tail."""
    fp = {
        key: value
        for key, value in summary.items()
        if key not in ("machine", "log")
    }
    log = summary.get("log")
    if log is not None:
        fp["log_records"] = [
            (r.addr, r.value, r.size, r.flags, r.timestamp)
            for r in log.records()
        ]
    return fp


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
class TestAnalyticsExactness:
    def test_attached_run_is_cycle_and_record_identical(self, workload):
        baseline = summary_fingerprint(run_workload(workload))

        hub = AnalyticsHub()
        with anstream.installed(hub):
            attached = run_workload(workload)
        assert summary_fingerprint(attached) == baseline
        if attached["log"] is not None:
            # The hub really was in the loop, not a no-op bystander.
            tap = hub.tap_for(attached["log"])
            assert tap is not None and tap.stats.record_count > 0

    def test_attached_with_export_is_cycle_identical_too(self, workload):
        baseline = summary_fingerprint(run_workload(workload))

        hub = AnalyticsHub()
        with obs_installed(Observability()) as obs:
            with anstream.installed(hub):
                attached = run_workload(workload)
            gauges = obs.metrics.snapshot()["gauges"]
        assert summary_fingerprint(attached) == baseline
        if attached["log"] is not None:
            assert any(name.startswith("analytics.") for name in gauges)
