"""Unit tests for the streaming log-tap framework (LogTap/AnalyticsHub)."""

from __future__ import annotations

import pytest

from conftest import make_logged_region
from repro.analytics import stream as anstream
from repro.analytics.core import _np
from repro.analytics.stream import AnalyticsHub, LogTap, rebuild_tap
from repro.errors import ConfigError
from repro.hw.params import PAGE_SIZE
from repro.obs.core import Observability, installed as obs_installed
from repro.obs.trace import Tracer


def write_words(machine, va, n, start=0, stride=4):
    proc = machine.current_process
    for i in range(n):
        proc.write(va + (start + i) * stride, (0xA0000000 + start + i) & 0xFFFFFFFF)
    machine.quiesce()


def tap_digest(tap):
    """Everything a tap has computed, as one comparable value."""
    now_ts = tap.stats.last_timestamp
    return {
        "stats": tap.stats.as_dict(),
        "pages": dict(tap.stats.writes_per_page),
        "curve": tap.wss.curve(),
        "latest": tap.wss.latest,
        "heat": tap.heat.top(32, now_ts),
        "write_rate": tap.write_rate.value,
        "bytes_per_tick": tap.forecast.bytes_per_tick.value,
        "rewinds": tap.rewinds,
    }


class TestLogTap:
    def test_advance_consumes_only_the_new_tail(self, machine):
        region, log, va = make_logged_region(machine)
        tap = LogTap(log)
        write_words(machine, va, 8)
        assert tap.advance() == 8
        assert tap.advance() == 0
        write_words(machine, va, 4, start=8)
        assert tap.advance() == 4
        assert tap.stats.record_count == 12

    def test_incremental_equals_one_shot(self, machine):
        region, log, va = make_logged_region(machine, size=4 * PAGE_SIZE)
        live = LogTap(log, window=8)
        # Interleave bursts with advances, crossing page boundaries.
        for burst, start in ((5, 0), (9, 1024), (3, 2048), (20, 64)):
            write_words(machine, va, burst, start=start)
            live.advance()
        oneshot = LogTap(log, window=8)
        oneshot.advance()
        # Rates are sampled per advance and heat decays at advance
        # granularity, so compare the pure folds.
        for key in ("stats", "pages", "curve", "latest"):
            assert tap_digest(live)[key] == tap_digest(oneshot)[key]

    @pytest.mark.skipif(_np is None, reason="numpy not available")
    def test_numpy_and_pure_paths_agree(self, machine, monkeypatch):
        region, log, va = make_logged_region(machine, size=4 * PAGE_SIZE)
        for burst, start in ((7, 0), (70, 512), (1, 3000), (130, 8)):
            write_words(machine, va, burst, start=start)

        fast = LogTap(log, window=16)
        fast.advance()
        assert _np is not None  # the fast path really ran vectorised

        monkeypatch.setattr(anstream, "_np", None)
        pure = LogTap(log, window=16)
        pure.advance()

        generic = LogTap(log, window=16)
        generic._fast = False
        generic.advance()

        assert tap_digest(fast) == tap_digest(pure) == tap_digest(generic)

    def test_announced_rewind_clamps_the_cursor(self, machine):
        region, log, va = make_logged_region(machine)
        tap = LogTap(log)
        write_words(machine, va, 8)
        tap.advance()
        cut = log.start_offset + 4 * log.record_size
        log.rewind(cut)
        tap.rewound(log.append_offset)
        assert tap.rewinds == 1
        write_words(machine, va, 6, start=32)
        # The 4 rewound slots are reused by new records: all 6 re-read.
        assert tap.advance() == 6
        assert tap.stats.record_count == 14

    def test_unannounced_rewind_is_detected(self, machine):
        region, log, va = make_logged_region(machine)
        tap = LogTap(log)
        write_words(machine, va, 8)
        tap.advance()
        log.attached_kernel = None  # silence the kernel's rewind relay
        log.rewind(log.start_offset)
        assert tap.advance() == 0
        assert tap.rewinds == 1
        write_words(machine, va, 3, start=64)
        assert tap.advance() == 3

    def test_report_is_json_ready(self, machine):
        region, log, va = make_logged_region(machine)
        tap = LogTap(log, name="unit")
        write_words(machine, va, 130)
        tap.advance()
        report = tap.report(top=4)
        assert report["name"] == "unit"
        assert report["stats"]["record_count"] == 130
        assert report["wss_curve"] == tap.wss.curve()
        assert len(report["heat_top"]) <= 4
        assert report["log_bytes_retained"] == 130 * log.record_size
        import json

        json.dumps(report)


class TestRebuild:
    def test_rebuilt_tap_equals_live_tap(self, machine):
        region, log, va = make_logged_region(machine)
        live = LogTap(log)
        for burst, start in ((12, 0), (30, 256)):
            write_words(machine, va, burst, start=start)
            live.advance()
        rebuilt = rebuild_tap(log, cycle=machine.clock.now)
        for key in ("stats", "pages", "curve", "latest"):
            assert tap_digest(rebuilt)[key] == tap_digest(live)[key]
        # Heat decays at advance granularity, so a rebuild (one big
        # advance) matches a one-shot tap rather than the burst-by-burst
        # live one.
        oneshot = LogTap(log)
        oneshot.advance()
        assert tap_digest(rebuilt)["heat"] == tap_digest(oneshot)["heat"]


class TestInstall:
    def test_double_install_is_refused(self):
        hub = AnalyticsHub()
        with anstream.installed(hub):
            assert anstream.active() is hub
            with pytest.raises(ConfigError):
                anstream.install(AnalyticsHub())
        assert anstream.active() is None

    def test_installed_uninstalls_on_error(self):
        with pytest.raises(RuntimeError):
            with anstream.installed(AnalyticsHub()):
                raise RuntimeError("boom")
        assert anstream.active() is None


class TestAnalyticsHub:
    def test_kernel_attach_and_drain_feed_the_hub(self, machine):
        hub = AnalyticsHub()
        with anstream.installed(hub):
            region, log, va = make_logged_region(machine)
            tap = hub.tap_for(log)
            assert tap is not None  # auto-registered at bind time
            write_words(machine, va, 16)
            machine.logger.flush()
        assert tap.stats.record_count == 16
        assert hub.records_consumed == 16

    def test_watch_is_idempotent(self, machine):
        region, log, va = make_logged_region(machine)
        hub = AnalyticsHub()
        tap = hub.watch(log, name="a")
        assert hub.watch(log) is tap
        assert hub.tap_for(log) is tap

    def test_notify_exports_gauges_and_counter_tracks(self, machine):
        region, log, va = make_logged_region(machine)
        write_words(machine, va, 24)
        hub = AnalyticsHub()
        hub.watch(log, name="bank")
        tracer = Tracer(categories={"metrics"})
        with obs_installed(Observability(tracer=tracer)) as obs:
            assert hub.notify(machine.clock.now) == 24
            gauges = obs.metrics.snapshot()["gauges"]
        assert gauges["analytics.bank.records"] == 24
        assert gauges["analytics.bank.pages_touched"] == 1
        assert gauges["analytics.bank.log_bytes"] == 24 * log.record_size
        tracks = {
            event["name"] for event in tracer.events if event["ph"] == "C"
        }
        assert {"analytics.bank.wss", "analytics.bank.records"} <= tracks

    def test_on_sample_fires_only_when_records_flow(self, machine):
        region, log, va = make_logged_region(machine)
        hub = AnalyticsHub()
        hub.watch(log)
        samples = []
        hub.on_sample = lambda cycle, h: samples.append(cycle)
        assert hub.notify(machine.clock.now) == 0
        assert samples == []
        write_words(machine, va, 4)
        hub.notify(machine.clock.now)
        assert len(samples) == 1

    def test_hub_report_aggregates_taps(self, machine):
        region, log, va = make_logged_region(machine)
        hub = AnalyticsHub()
        hub.watch(log, name="r0")
        write_words(machine, va, 10)
        hub.notify(machine.clock.now)
        report = hub.report()
        assert report["records_consumed"] == 10
        assert [t["name"] for t in report["taps"]] == ["r0"]
