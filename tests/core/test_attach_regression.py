"""Regression tests for the ``AddressSpace.attach`` allocator.

The original code advanced ``_next_va`` *before* validating an
auto-placed bind, so a failing bind leaked virtual address space — and
an auto base was taken verbatim from ``_next_va``, so one bound region
whose ``size`` is not a page multiple left the allocator misaligned and
every later auto bind failed with an alignment error.
"""

import pytest

from repro.core.address_space import DEFAULT_MAP_BASE, AddressSpace
from repro.core.context import boot, set_current_machine
from repro.core.region import StdRegion
from repro.core.segment import StdSegment
from repro.errors import BindError
from repro.hw.params import PAGE_SIZE, MachineConfig

CONFIG = MachineConfig(memory_bytes=8 * 1024 * 1024)


class OddSizedRegion(StdRegion):
    """A region whose mapped size is not a page multiple.

    ``Region.size`` is an overridable property; the allocator must not
    assume callers only ever present page-rounded sizes.
    """

    @property
    def size(self):
        return PAGE_SIZE + 100


@pytest.fixture
def machine():
    m = boot(CONFIG)
    yield m
    set_current_machine(None)


def test_odd_sized_region_does_not_wedge_auto_binding(machine):
    aspace = machine.current_process.address_space()
    odd = OddSizedRegion(StdSegment(PAGE_SIZE, machine=machine))
    assert odd.bind(aspace) == DEFAULT_MAP_BASE
    # The next auto bind must get a page-aligned base after the odd
    # mapping (the original code handed out the misaligned end address
    # and then rejected it, permanently wedging auto binding).
    after = StdRegion(StdSegment(PAGE_SIZE, machine=machine))
    assert after.bind(aspace) == DEFAULT_MAP_BASE + 2 * PAGE_SIZE


def test_rejected_bind_leaves_allocator_untouched(machine):
    aspace = machine.current_process.address_space()
    first = StdRegion(StdSegment(PAGE_SIZE, machine=machine))
    va = first.bind(aspace)
    next_va = aspace._next_va
    other = StdRegion(StdSegment(PAGE_SIZE, machine=machine))
    with pytest.raises(BindError):
        other.bind(aspace, va + 1)  # misaligned
    with pytest.raises(BindError):
        other.bind(aspace, va)  # overlaps `first`
    assert aspace._next_va == next_va
    assert other.bind(aspace) == va + PAGE_SIZE  # packs tightly, no leak


def test_rejected_attach_does_not_leak_va(machine):
    # Drive attach directly: a request that fails validation must not
    # move the allocator even when auto placement chose the address.
    aspace = AddressSpace(machine=machine)
    blocker = StdRegion(StdSegment(PAGE_SIZE, machine=machine))
    blocker.bind(aspace)
    aspace._next_va = DEFAULT_MAP_BASE  # force the next auto pick onto it
    request = StdRegion(StdSegment(PAGE_SIZE, machine=machine))
    with pytest.raises(BindError):
        aspace.attach(request, 0)
    assert aspace._next_va == DEFAULT_MAP_BASE
    assert request not in aspace.regions()


def test_explicit_binds_advance_allocator_past_their_end(machine):
    aspace = machine.current_process.address_space()
    high = StdRegion(StdSegment(PAGE_SIZE, machine=machine))
    high.bind(aspace, DEFAULT_MAP_BASE + 8 * PAGE_SIZE)
    auto = StdRegion(StdSegment(PAGE_SIZE, machine=machine))
    assert auto.bind(aspace) == DEFAULT_MAP_BASE + 9 * PAGE_SIZE
