"""Edge-case tests: kernel fault paths, log table pressure, stats."""

import pytest

from conftest import make_logged_region
from repro.errors import LoggingError
from repro.core.context import boot, set_current_machine
from repro.core.log_segment import LogSegment
from repro.core.region import StdRegion
from repro.core.segment import StdSegment
from repro.hw.interrupts import Interrupt
from repro.hw.params import LOG_RECORD_SIZE, PAGE_SIZE, MachineConfig


class TestLogTablePressure:
    def test_log_table_exhaustion(self, machine, proc):
        """Only ``log_table_entries`` logs can be active at once."""
        capacity = machine.config.log_table_entries
        regions = []
        for i in range(capacity):
            seg = StdSegment(PAGE_SIZE, machine=machine)
            region = StdRegion(seg)
            region.log(LogSegment(machine=machine))
            region.bind(proc.address_space())
            regions.append(region)
        overflow = StdRegion(StdSegment(PAGE_SIZE, machine=machine))
        overflow.log(LogSegment(machine=machine))
        with pytest.raises(LoggingError):
            overflow.bind(proc.address_space())
        # Unloading one (context-switch style) frees a slot.
        machine.kernel.detach_region_log(regions[0], cpu=proc.cpu)
        overflow2 = StdRegion(StdSegment(PAGE_SIZE, machine=machine))
        overflow2.log(LogSegment(machine=machine))
        overflow2.bind(proc.address_space())

    def test_many_active_logs_interleave_correctly(self, machine, proc):
        regions = []
        for i in range(8):
            region, log, va = make_logged_region(machine, size=PAGE_SIZE)
            regions.append((region, log, va))
        for round_ in range(5):
            for i, (_, _, va) in enumerate(regions):
                proc.write(va + 4 * round_, 100 * i + round_)
        machine.quiesce()
        for i, (_, log, _) in enumerate(regions):
            assert [r.value for r in log.records()] == [
                100 * i + round_ for round_ in range(5)
            ]


class TestInterruptRouting:
    def test_logging_faults_counted_by_vector(self, machine, proc):
        region, log, va = make_logged_region(machine)
        per_page = PAGE_SIZE // LOG_RECORD_SIZE
        for i in range(per_page + 1):
            proc.write(va + 4 * (i % 1024), i)
        machine.quiesce()
        counts = machine.interrupts.counts
        # The first page is loaded eagerly at attach; crossing into the
        # second page raises the boundary fault.
        assert counts[Interrupt.LOGGING_FAULT_BOUNDARY] >= 1

    def test_overload_vector_counted(self, machine, proc):
        region, log, va = make_logged_region(machine)
        for i in range(1500):
            proc.write(va + 4 * (i % 1024), i)
        machine.quiesce()
        assert machine.interrupts.counts[Interrupt.LOGGER_OVERLOAD] >= 1
        assert machine.kernel.stats.overloads >= 1


class TestKernelStats:
    def test_stats_snapshot(self, machine, proc):
        region, log, va = make_logged_region(machine)
        proc.write(va, 1)
        snap = machine.kernel.stats.snapshot()
        assert snap["page_faults"] == 1
        assert snap["logged_page_faults"] == 1

    def test_direct_mapped_updates_counted(self, machine, proc):
        from repro.hw.logger import LogMode

        seg = StdSegment(PAGE_SIZE, machine=machine)
        region = StdRegion(seg)
        region.log(LogSegment(size=PAGE_SIZE, machine=machine),
                   mode=LogMode.DIRECT_MAPPED)
        va = region.bind(proc.address_space())
        proc.write(va, 1)
        proc.write(va + 4, 2)
        machine.quiesce()
        assert machine.kernel.stats.direct_mapped_updates == 2


class TestLogRewindIntegration:
    def test_rewind_reloads_hardware_pointer(self, machine, proc):
        region, log, va = make_logged_region(machine)
        for i in range(6):
            proc.write(va + 4 * i, i)
        machine.quiesce()
        log.rewind(3 * LOG_RECORD_SIZE)
        proc.write(va + 100, 99)
        machine.quiesce()
        values = [r.value for r in log.records()]
        assert values == [0, 1, 2, 99]

    def test_rewind_bounds_checked(self, machine, proc):
        region, log, va = make_logged_region(machine)
        proc.write(va, 1)
        machine.quiesce()
        with pytest.raises(LoggingError):
            log.rewind(5 * LOG_RECORD_SIZE)
        log.truncate(LOG_RECORD_SIZE)
        with pytest.raises(LoggingError):
            log.rewind(0)  # below the truncation point


class TestBootAndContext:
    def test_boot_creates_process_and_kernel(self):
        machine = boot(MachineConfig(memory_bytes=8 * 1024 * 1024))
        try:
            assert machine.kernel is not None
            assert machine.current_process is machine.processes[0]
        finally:
            set_current_machine(None)

    def test_use_machine_restores_previous(self):
        from repro.core.context import current_machine, use_machine

        m1 = boot(MachineConfig(memory_bytes=8 * 1024 * 1024))
        m2 = boot(MachineConfig(memory_bytes=8 * 1024 * 1024))
        try:
            assert current_machine() is m2
            with use_machine(m1):
                assert current_machine() is m1
            assert current_machine() is m2
        finally:
            set_current_machine(None)

    def test_current_machine_boots_lazily(self):
        set_current_machine(None)
        from repro.core.context import current_machine

        machine = current_machine()
        try:
            assert machine.kernel is not None
        finally:
            set_current_machine(None)
