"""Unit tests: regions, binding, and the timed address-space path."""

import pytest

from repro.errors import BindError, LoggingError, RegionError
from repro.core.log_segment import LogSegment
from repro.core.region import StdRegion
from repro.core.segment import StdSegment
from repro.hw.params import PAGE_SIZE


class TestRegionBinding:
    def test_bind_allocates_va(self, machine, proc):
        seg = StdSegment(2 * PAGE_SIZE, machine=machine)
        region = StdRegion(seg)
        va = region.bind(proc.address_space())
        assert va % PAGE_SIZE == 0
        assert region.is_bound
        assert region.base_va == va

    def test_bind_at_explicit_address(self, machine, proc):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        region = StdRegion(seg)
        va = region.bind(proc.address_space(), 0x4000_0000)
        assert va == 0x4000_0000

    def test_double_bind_rejected(self, machine, proc):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        region = StdRegion(seg)
        region.bind(proc.address_space())
        with pytest.raises(BindError):
            region.bind(proc.address_space())

    def test_overlapping_bind_rejected(self, machine, proc):
        aspace = proc.address_space()
        seg = StdSegment(2 * PAGE_SIZE, machine=machine)
        StdRegion(seg).bind(aspace, 0x4000_0000)
        with pytest.raises(BindError):
            StdRegion(StdSegment(PAGE_SIZE, machine=machine)).bind(
                aspace, 0x4000_1000
            )

    def test_unaligned_bind_rejected(self, machine, proc):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        with pytest.raises(BindError):
            StdRegion(seg).bind(proc.address_space(), 0x123)

    def test_unbind(self, machine, proc):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        region = StdRegion(seg)
        region.bind(proc.address_space())
        region.unbind()
        assert not region.is_bound
        # The same region can be bound again.
        region.bind(proc.address_space())

    def test_unbind_unbound_rejected(self, machine):
        region = StdRegion(StdSegment(PAGE_SIZE, machine=machine))
        with pytest.raises(RegionError):
            region.unbind()

    def test_va_offset_roundtrip(self, machine, proc):
        seg = StdSegment(2 * PAGE_SIZE, machine=machine)
        region = StdRegion(seg)
        va = region.bind(proc.address_space())
        assert region.va_to_offset(va + 100) == 100
        assert region.offset_to_va(100) == va + 100
        with pytest.raises(RegionError):
            region.va_to_offset(va - 4)

    def test_two_address_spaces_same_segment(self, machine, proc):
        """One segment may be mapped by several processes (section 2.1)."""
        from repro.core.process import create_process

        seg = StdSegment(PAGE_SIZE, machine=machine)
        other = create_process(machine, cpu_index=1)
        va1 = StdRegion(seg).bind(proc.address_space())
        va2 = StdRegion(seg).bind(other.address_space())
        proc.write(va1, 0x77)
        assert other.read(va2) == 0x77

    def test_log_requires_log_segment(self, machine):
        region = StdRegion(StdSegment(PAGE_SIZE, machine=machine))
        with pytest.raises(LoggingError):
            region.log(StdSegment(PAGE_SIZE, machine=machine))

    def test_second_log_rejected(self, machine):
        region = StdRegion(StdSegment(PAGE_SIZE, machine=machine))
        region.log(LogSegment(machine=machine))
        with pytest.raises(LoggingError):
            region.log(LogSegment(machine=machine))


class TestTimedAccess:
    def test_write_then_read(self, machine, proc):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        va = StdRegion(seg).bind(proc.address_space())
        proc.write(va + 4, 123456)
        assert proc.read(va + 4) == 123456
        assert seg.read(4, 4) == 123456

    def test_page_fault_charged_once(self, machine, proc):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        va = StdRegion(seg).bind(proc.address_space())
        t0 = proc.now
        proc.write(va, 1)
        fault_cost = proc.now - t0
        assert fault_cost >= machine.config.page_fault_cycles
        t1 = proc.now
        proc.write(va + 4, 2)
        assert proc.now - t1 < machine.config.page_fault_cycles

    def test_unmapped_address_faults_to_error(self, machine, proc):
        from repro.errors import UnmappedAddressError

        with pytest.raises(UnmappedAddressError):
            proc.read(0x7777_0000)

    def test_byte_helpers(self, machine, proc):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        va = StdRegion(seg).bind(proc.address_space())
        proc.write_bytes(va + 3, b"hello world!")
        assert proc.read_bytes(va + 3, 12) == b"hello world!"

    def test_kernel_page_fault_counters(self, machine, proc):
        seg = StdSegment(4 * PAGE_SIZE, machine=machine)
        va = StdRegion(seg).bind(proc.address_space())
        for i in range(4):
            proc.write(va + i * PAGE_SIZE, i)
        assert machine.kernel.stats.page_faults == 4


class TestAddressSpaceResetDeferredCopy:
    def test_reset_via_address_space(self, machine, proc):
        src = StdSegment(2 * PAGE_SIZE, machine=machine)
        src.write(8, 42, 4)
        dst = StdSegment(2 * PAGE_SIZE, machine=machine)
        dst.source_segment(src)
        aspace = proc.address_space()
        va = StdRegion(dst).bind(aspace)

        proc.write(va + 8, 999)
        assert proc.read(va + 8) == 999
        stats = aspace.reset_deferred_copy(va, va + dst.size, cpu=proc.cpu)
        assert stats.dirty_pages == 1
        assert proc.read(va + 8) == 42

    def test_reset_charges_cycles(self, machine, proc):
        src = StdSegment(PAGE_SIZE, machine=machine)
        dst = StdSegment(PAGE_SIZE, machine=machine)
        dst.source_segment(src)
        aspace = proc.address_space()
        va = StdRegion(dst).bind(aspace)
        t0 = proc.now
        aspace.reset_deferred_copy(va, va + PAGE_SIZE, cpu=proc.cpu)
        assert proc.now > t0

    def test_reset_skips_non_dc_regions(self, machine, proc):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        aspace = proc.address_space()
        va = StdRegion(seg).bind(aspace)
        proc.write(va, 5)
        stats = aspace.reset_deferred_copy(va, va + PAGE_SIZE, cpu=proc.cpu)
        assert stats.pages_scanned == 0
        assert proc.read(va) == 5  # untouched
