"""Tests: per-process log multiplexing via context switch (§3.1.2)."""


from repro.core.log_segment import LogSegment
from repro.core.process import create_process
from repro.core.region import StdRegion
from repro.core.segment import StdSegment
from repro.hw.params import PAGE_SIZE


def logged_region_for(machine, proc, segment):
    region = StdRegion(segment)
    region.log(LogSegment(machine=machine))
    region.bind(proc.address_space())
    return region


class TestContextSwitch:
    def test_switch_charges_cycles(self, machine, proc):
        other = create_process(machine, cpu_index=0)
        t0 = proc.cpu.now
        machine.kernel.context_switch(other)
        assert proc.cpu.now - t0 >= machine.config.context_switch_cycles

    def test_switch_installs_address_space(self, machine, proc):
        other = create_process(machine, cpu_index=0)
        machine.kernel.context_switch(other)
        assert proc.cpu.address_space is other.address_space()
        assert machine.current_process is other

    def test_two_processes_log_same_segment_time_multiplexed(self, machine, proc):
        """The section 3.1.2 scenario: one shared segment, two
        processes, each with its own log — by unloading at switch."""
        shared = StdSegment(PAGE_SIZE, machine=machine)
        kernel = machine.kernel

        # Process A (current) gets its logged mapping first.
        region_a = logged_region_for(machine, proc, shared)
        proc.write(region_a.base_va, 0xA1)

        # Deactivate A's log so B's can be created, then bind B's.
        kernel.detach_region_log(region_a, cpu=proc.cpu)
        proc_b = create_process(machine, cpu_index=0)
        region_b = logged_region_for(machine, proc_b, shared)

        # Run B: its writes go to its own log.
        kernel.context_switch(proc_b)
        proc_b.write(region_b.base_va + 4, 0xB1)

        # Switch back to A: A's log reactivates, B's unloads.
        # (context_switch detaches the outgoing B before attaching A,
        # but A's region lives in A's address space, so reattach it.)
        kernel.context_switch(proc)
        proc.write(region_a.base_va + 8, 0xA2)
        machine.quiesce()

        values_a = [r.value for r in region_a.log_segment.records()]
        values_b = [r.value for r in region_b.log_segment.records()]
        assert values_a == [0xA1, 0xA2]
        assert values_b == [0xB1]
        # "transactions are not randomly intermixed in the log"
        assert region_a.log_segment is not region_b.log_segment

    def test_reactivated_log_appends_after_existing_records(self, machine, proc):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        region = logged_region_for(machine, proc, seg)
        proc.write(region.base_va, 1)
        machine.kernel.detach_region_log(region, cpu=proc.cpu)
        proc.write(region.base_va + 4, 2)  # unlogged while detached
        machine.kernel.attach_region_log(region)
        proc.write(region.base_va + 8, 3)
        machine.quiesce()
        assert [r.value for r in region.log_segment.records()] == [1, 3]

    def test_detached_region_keeps_log_segment(self, machine, proc):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        region = logged_region_for(machine, proc, seg)
        log = region.log_segment
        machine.kernel.detach_region_log(region, cpu=proc.cpu)
        assert region.log_segment is log
        assert region.log_index is None

    def test_switch_to_same_address_space_keeps_logs(self, machine, proc):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        region = logged_region_for(machine, proc, seg)
        index = region.log_index
        machine.kernel.context_switch(proc)  # switch to self
        assert region.log_index == index
        proc.write(region.base_va, 7)
        machine.quiesce()
        assert region.log_segment.record_count == 1
