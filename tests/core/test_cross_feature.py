"""Cross-feature integration: subsystems composing over one machine.

These exercise combinations a downstream user would actually build:
a debugger monitoring a live RLVM database, the visualizer following a
Time Warp simulation's working segment, prototype-vs-on-chip update
stream equivalence, and deferred copy composed with logging.
"""

from hypothesis import given, settings, strategies as st

from conftest import TEST_CONFIG, TEST_CONFIG_ONCHIP, make_logged_region
from repro.core.context import boot, set_current_machine
from repro.core.log_reader import RegionLogView
from repro.core.segment import StdSegment
from repro.hw.params import PAGE_SIZE


class TestMonitorOverRlvm:
    def test_nonconsuming_monitor_does_not_break_transactions(self, machine, proc):
        """A debugger can watch a recoverable segment's log while RLVM
        keeps committing — because the monitor is non-consuming."""
        from repro.debugger import WriteMonitor
        from repro.rvm.rlvm import RLVM

        rlvm = RLVM(proc)
        va = rlvm.map("db", 4096)
        region = rlvm.segments["db"].region
        monitor = WriteMonitor(region, consume=False)
        monitor.watch(va)

        txn = rlvm.begin()
        txn.write(va, 111)
        hits, _ = monitor.poll()  # observe mid-transaction
        assert [h.value for h in hits] == [111]
        txn.commit()  # commit still sees its records
        assert proc.read(va) == 111
        # And survives a crash: the monitor didn't eat the redo info.
        recovered = rlvm.crash_and_recover()
        assert proc.read(recovered.segments["db"].data_va) == 111


class TestVisualizerOverTimeWarp:
    def test_visualizer_follows_simulation_state(self, machine):
        from repro.core.process import create_process
        from repro.output import StateVisualizer
        from repro.timewarp import CultPolicy, PholdModel, TimeWarpSimulation
        from repro.timewarp.state_saving import LVMStateSaver, MARKER_BYTES

        # CULT would truncate the log as GVT advances; defer it forever
        # so the follower sees the complete update stream.
        no_cult = CultPolicy(lead_margin=10**12, log_budget_bytes=1 << 62)
        sim = TimeWarpSimulation(
            PholdModel(num_objects=4, population=4, seed=9),
            end_time=60,
            saver=None,
            n_schedulers=1,
            machine=machine,
            saver_factory=lambda: LVMStateSaver(cult_policy=no_cult),
        )
        sched = sim.schedulers[0]
        out = create_process(machine, cpu_index=1)
        viz = StateVisualizer(
            out,
            sched.saver.region,
            watch=[(f"obj{i}", MARKER_BYTES + i * 16) for i in range(4)],
        )
        sim.run()
        viz.synchronize()
        # The replica's event counters match the committed state.
        for i, obj in enumerate(sched.local_objects):
            expected = int.from_bytes(sched.object_state(obj)[:4], "little")
            assert viz.value(f"obj{i}") == expected


class TestPrototypeOnChipEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(0, PAGE_SIZE // 4 - 1),
                st.integers(0, 2**32 - 1),
            ),
            max_size=40,
        )
    )
    def test_property_same_update_stream(self, ops):
        """Both logger designs produce the same (offset, value) stream
        for the same program, despite different record addressing."""
        streams = []
        for config in (TEST_CONFIG, TEST_CONFIG_ONCHIP):
            machine = boot(config)
            try:
                proc = machine.current_process
                region, log, va = make_logged_region(machine, size=PAGE_SIZE)
                for word, value in ops:
                    proc.write(va + 4 * word, value)
                machine.quiesce()
                view = RegionLogView(region)
                streams.append([(o, v, s) for o, v, s in view.updates()])
            finally:
                set_current_machine(None)
        assert streams[0] == streams[1]


class TestDeferredCopyWithLogging:
    def test_rollback_log_replay_composition(self, machine, proc):
        """The full Figure 3 mechanic outside the Time Warp kernel:
        checkpoint <- deferred copy <- working (logged), manual
        reset + partial replay."""
        region, log, va = make_logged_region(machine, size=PAGE_SIZE)
        checkpoint = StdSegment(region.size, machine=machine)
        region.segment.source_segment(checkpoint)

        for i, value in enumerate((10, 20, 30, 40)):
            proc.write(va + 4 * i, value)
        machine.quiesce()

        # Roll back, then roll forward only the first two updates.
        aspace = proc.address_space()
        aspace.reset_deferred_copy(va, va + region.size, cpu=proc.cpu)
        view = RegionLogView(region)
        offsets = [off for off, _ in log.records_with_offsets()]
        view.apply_to(region.segment, limit_offset=offsets[2])

        assert proc.read(va) == 10
        assert proc.read(va + 4) == 20
        assert proc.read(va + 8) == 0
        assert proc.read(va + 12) == 0

    def test_reset_also_clears_replayed_state(self, machine, proc):
        region, log, va = make_logged_region(machine, size=PAGE_SIZE)
        checkpoint = StdSegment(region.size, machine=machine)
        region.segment.source_segment(checkpoint)
        proc.write(va, 5)
        machine.quiesce()
        aspace = proc.address_space()
        aspace.reset_deferred_copy(va, va + region.size, cpu=proc.cpu)
        RegionLogView(region).apply_to(region.segment)
        assert proc.read(va) == 5
        aspace.reset_deferred_copy(va, va + region.size, cpu=proc.cpu)
        assert proc.read(va) == 0
