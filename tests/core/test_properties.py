"""Property-based tests for the core LVM invariants (hypothesis)."""

from hypothesis import given, settings, strategies as st

from conftest import TEST_CONFIG, make_logged_region
from repro.core.context import boot, set_current_machine
from repro.hw.params import PAGE_SIZE

write_ops = st.lists(
    st.tuples(
        st.integers(0, PAGE_SIZE - 4).map(lambda x: x & ~3),  # aligned offset
        st.integers(0, 2**32 - 1),  # value
        st.integers(0, 60),  # compute gap
    ),
    max_size=80,
)


@settings(max_examples=30, deadline=None)
@given(ops=write_ops)
def test_property_log_is_exact_write_sequence(ops):
    """Log completeness and order: the decoded log IS the write sequence.

    For any sequence of writes to a logged region — regardless of
    compute gaps, overloads, page faults — the log contains exactly one
    record per write, in program order, with the written values and
    non-decreasing timestamps.
    """
    machine = boot(TEST_CONFIG)
    try:
        proc = machine.current_process
        region, log, va = make_logged_region(machine, size=PAGE_SIZE)
        for offset, value, gap in ops:
            if gap:
                proc.compute(gap)
            proc.write(va + offset, value)
        machine.quiesce()

        records = list(log.records())
        assert len(records) == len(ops)
        frame_base = (
            region.segment.page(0).frame.base_addr if ops else 0
        )
        for (offset, value, _), record in zip(ops, records):
            assert record.addr == frame_base + offset
            assert record.value == value
        stamps = [r.timestamp for r in records]
        assert stamps == sorted(stamps)
        assert log.lost_records == 0
    finally:
        set_current_machine(None)


@settings(max_examples=25, deadline=None)
@given(ops=write_ops)
def test_property_log_replay_reconstructs_state(ops):
    """Replaying the log onto a checkpoint reproduces the final state.

    This is the roll-forward operation of section 2.4: applying each
    logged update to a copy of the initial state must yield exactly the
    working segment's final contents.
    """
    from repro.core.segment import StdSegment

    machine = boot(TEST_CONFIG)
    try:
        proc = machine.current_process
        region, log, va = make_logged_region(machine, size=PAGE_SIZE)
        for offset, value, _ in ops:
            proc.write(va + offset, value)
        machine.quiesce()

        replay = StdSegment(PAGE_SIZE, machine=machine)
        frame_base = region.segment.page(0).frame.base_addr if ops else 0
        for record in log.records():
            replay.write(record.addr - frame_base, record.value, record.size)
        assert replay.snapshot() == region.segment.snapshot()
    finally:
        set_current_machine(None)


@settings(max_examples=20, deadline=None)
@given(
    ops=write_ops,
    threshold=st.integers(4, 64),
)
def test_property_no_records_lost_under_overload(ops, threshold):
    """Overload slows the machine down but never drops records."""
    config = TEST_CONFIG.with_changes(
        logger_fifo_capacity=2 * threshold, logger_overload_threshold=threshold
    )
    machine = boot(config)
    try:
        proc = machine.current_process
        region, log, va = make_logged_region(machine, size=PAGE_SIZE)
        for offset, value, _ in ops:
            proc.write(va + offset, value)  # no gaps: maximum pressure
        machine.quiesce()
        assert log.record_count == len(ops)
        assert log.lost_records == 0
    finally:
        set_current_machine(None)
