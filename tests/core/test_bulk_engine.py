"""Cycle-exactness guard for the bulk-access engine.

Each workload runs twice, on two freshly booted, identically configured
machines: once through the word-at-a-time reference loop
(``write_bytes``/``read_bytes``) and once through the bulk engine
(``write_block``/``read_block``).  The complete observable state — memory
contents, log records, and every CPU / bus / logger cycle counter — must
be bit-identical.  The workloads are chosen to push records down every
side path: page faults, log-page boundary faults, PMT conflict misses,
FIFO overload and overflow, write-protection traps, deferred-copy
segments, special log modes, and the on-chip logger.
"""

from __future__ import annotations

import random

import pytest

from repro.core import bulk
from repro.core.context import boot, set_current_machine
from repro.core.log_segment import LogSegment
from repro.core.region import StdRegion
from repro.core.segment import StdSegment
from repro.errors import ProtectionError, UnmappedAddressError
from repro.hw.logger import LogMode
from repro.hw.params import NEXT_GENERATION, PAGE_SIZE, MachineConfig

BASE = MachineConfig(memory_bytes=32 * 1024 * 1024)
ONCHIP = NEXT_GENERATION.with_changes(memory_bytes=32 * 1024 * 1024)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def machine_state(m, ctx):
    """Everything observable about a machine after a workload."""
    cpu = m.cpu(0)
    lg = m.logger
    state = {
        "cpu_now": cpu._now,
        "cpu_resume_at": cpu._resume_at,
        "cpu_stats": cpu.stats.snapshot(),
        "write_buffer": list(cpu._write_buffer),
        "l1": (cpu.l1.hits, cpu.l1.misses, dict(cpu.l1._tags)),
        "clock_now": m.clock.now,
        "bus": (m.bus.busy_until, m.bus.total_busy_cycles, m.bus.transaction_count),
        "logger_stats": lg.stats.snapshot(),
        "logger_service_free": lg._service_free,
        "fifo": (
            list(lg.write_fifo._entries),
            lg.write_fifo.high_water_mark,
            lg.write_fifo.overflow_count,
        ),
        "pmt": (lg.pmt.lookup_count, lg.pmt.miss_count, lg.pmt.eviction_count),
        "log_table": {
            idx: (entry.log_address, entry.valid)
            for idx, entry in lg.log_table._entries.items()
        },
        "absorbing": set(lg._absorbing),
        "kernel_stats": m.kernel.stats.snapshot(),
        "interrupts": dict(m.interrupts.counts),
        "segments": [seg.snapshot() for seg in ctx.get("segments", ())],
        "logs": [
            (log.append_offset, log.records_appended, log.lost_records, log.snapshot())
            for log in ctx.get("logs", ())
        ],
    }
    if m.on_chip_logger is not None:
        oc = m.on_chip_logger
        state["onchip"] = (oc.records_logged, oc.records_dropped)
    return state


def run_pair(build, drive, config=BASE):
    """Run ``drive`` on two machines (slow vs bulk) and diff their state.

    ``build(machine)`` sets up regions/logs and returns a context dict
    (with optional "segments"/"logs" lists to snapshot);
    ``drive(machine, ctx, block_path)`` applies the workload through the
    reference loop when ``block_path`` is False and through the bulk
    engine when True.  Returns the (identical) final state.
    """
    states = []
    outputs = []
    for block_path in (False, True):
        m = boot(config)
        try:
            ctx = build(m)
            outputs.append(drive(m, ctx, block_path))
        finally:
            set_current_machine(None)
        states.append(machine_state(m, ctx))
    slow, fast = states
    for key in slow:
        assert fast[key] == slow[key], f"bulk path diverged in {key!r}"
    assert outputs[0] == outputs[1], "read data diverged"
    return slow


def store(m, va, data, block_path):
    aspace = m.current_process.address_space()
    cpu = m.cpu(0)
    if block_path:
        aspace.write_block(cpu, va, data)
    else:
        aspace.write_bytes(cpu, va, data)


def load(m, va, length, block_path):
    aspace = m.current_process.address_space()
    cpu = m.cpu(0)
    if block_path:
        return aspace.read_block(cpu, va, length)
    return aspace.read_bytes(cpu, va, length)


def build_region(size=4 * PAGE_SIZE, logged=True, mode=LogMode.NORMAL, **log_extra):
    def build(m):
        seg = StdSegment(size, machine=m)
        region = StdRegion(seg)
        ctx = {"region": region, "segments": [seg], "logs": []}
        if logged:
            log = LogSegment(machine=m, **log_extra)
            region.log(log, mode)
            ctx["logs"].append(log)
        ctx["va"] = region.bind(m.current_process.address_space())
        return ctx

    return build


# ----------------------------------------------------------------------
# Write exactness
# ----------------------------------------------------------------------
class TestWriteExactness:
    def test_sequential_logged(self):
        payload = random.Random(1).randbytes(2 * PAGE_SIZE + 123)

        def drive(m, ctx, bp):
            store(m, ctx["va"], payload, bp)

        state = run_pair(build_region(), drive)
        # Sanity: the workload really exercised the logger pipeline.
        assert state["logger_stats"]["records_logged"] > 0
        assert state["logger_stats"]["boundary_fault_count"] > 0

    def test_unaligned_offsets_and_tails(self):
        rng = random.Random(2)
        chunks = [
            (1, rng.randbytes(3)),
            (PAGE_SIZE - 3, rng.randbytes(7)),  # crosses a page boundary
            (2 * PAGE_SIZE + 2, rng.randbytes(2)),
            (5, rng.randbytes(257)),
            (PAGE_SIZE + 1, rng.randbytes(1)),
        ]

        def drive(m, ctx, bp):
            for off, data in chunks:
                store(m, ctx["va"] + off, data, bp)

        run_pair(build_region(), drive)

    def test_randomized_mixed_workload(self):
        rng = random.Random(3)
        size = 4 * PAGE_SIZE
        ops = []
        for _ in range(60):
            off = rng.randrange(size - 300)
            length = rng.randrange(1, 300)
            if rng.random() < 0.6:
                ops.append(("w", off, rng.randbytes(length)))
            else:
                ops.append(("r", off, length))

        def drive(m, ctx, bp):
            out = []
            for kind, off, arg in ops:
                if kind == "w":
                    store(m, ctx["va"] + off, arg, bp)
                else:
                    out.append(load(m, ctx["va"] + off, arg, bp))
            return out

        run_pair(build_region(), drive)

    def test_unlogged_region(self):
        payload = random.Random(4).randbytes(PAGE_SIZE + 77)

        def drive(m, ctx, bp):
            store(m, ctx["va"] + 3, payload, bp)
            return load(m, ctx["va"], PAGE_SIZE, bp)

        state = run_pair(build_region(logged=False), drive)
        assert state["logger_stats"]["records_logged"] == 0

    def test_indexed_log_mode_falls_back_exactly(self):
        payload = random.Random(5).randbytes(600)

        def drive(m, ctx, bp):
            store(m, ctx["va"] + 4, payload, bp)

        state = run_pair(build_region(mode=LogMode.INDEXED), drive)
        assert state["logger_stats"]["records_logged"] > 0


class TestSidePathExactness:
    def test_deferred_copy_destination(self):
        def build(m):
            src = StdSegment(2 * PAGE_SIZE, machine=m)
            src.write_bytes(0, random.Random(6).randbytes(2 * PAGE_SIZE))
            dst = StdSegment(2 * PAGE_SIZE, machine=m)
            dst.source_segment(src)
            region = StdRegion(dst)
            va = region.bind(m.current_process.address_space())
            return {"region": region, "va": va, "segments": [src, dst], "logs": []}

        rng = random.Random(7)
        writes = [(rng.randrange(2 * PAGE_SIZE - 40), rng.randbytes(rng.randrange(1, 40)))
                  for _ in range(25)]

        def drive(m, ctx, bp):
            out = []
            for off, data in writes:
                store(m, ctx["va"] + off, data, bp)
                out.append(load(m, ctx["va"] + max(0, off - 8), len(data) + 16, bp))
            out.append(load(m, ctx["va"], 2 * PAGE_SIZE, bp))
            return out

        run_pair(build, drive)

    def test_protection_trap_with_unprotect_handler(self):
        def build(m):
            ctx = build_region()(m)
            aspace = m.current_process.address_space()
            region = ctx["region"]
            va = ctx["va"]
            # Touch the pages first so PTEs exist, then protect page 1.
            aspace.write_bytes(m.cpu(0), va, b"\0" * (3 * PAGE_SIZE))
            aspace.protect_range(va + PAGE_SIZE, va + 2 * PAGE_SIZE)

            def handler(reg, vaddr):
                aspace.unprotect_range(vaddr, vaddr + 1)

            region.protection_handler = handler
            return ctx

        payload = random.Random(8).randbytes(3 * PAGE_SIZE)

        def drive(m, ctx, bp):
            store(m, ctx["va"], payload, bp)

        state = run_pair(build, drive)
        assert state["kernel_stats"]["protection_faults"] == 1

    def test_overflow_with_tight_fifo(self):
        # threshold == capacity: occupancy can never exceed the
        # threshold, so the FIFO overflows (drops) instead of raising
        # overload interrupts — both paths must drop identically.
        config = BASE.with_changes(
            logger_fifo_capacity=4, logger_overload_threshold=4
        )
        payload = random.Random(9).randbytes(2048)

        def drive(m, ctx, bp):
            store(m, ctx["va"], payload, bp)

        state = run_pair(build_region(), drive, config=config)
        assert state["fifo"][2] > 0  # overflow_count
        assert state["logger_stats"]["records_dropped"] > 0
        assert state["logger_stats"]["overload_events"] == 0

    def test_overload_with_low_threshold(self):
        config = BASE.with_changes(
            logger_fifo_capacity=32, logger_overload_threshold=4
        )
        payload = random.Random(10).randbytes(2048)

        def drive(m, ctx, bp):
            store(m, ctx["va"], payload, bp)

        state = run_pair(build_region(), drive, config=config)
        assert state["logger_stats"]["overload_events"] > 0
        assert state["cpu_stats"]["suspend_cycles"] > 0

    def test_pmt_conflict_misses(self):
        # A 2-entry PMT with two logged pages landing on the same index:
        # alternating writes evict each other's entries, forcing PMT
        # faults inside the drain on both paths.
        config = BASE.with_changes(pmt_index_bits=1)
        rng = random.Random(11)
        # Touch order 0, 1, 2 allocates consecutive frames, so region
        # pages 0 and 2 get same-parity frame numbers — the same PMT
        # index — and then alternating writes evict each other.
        bursts = [
            (page, rng.randbytes(64)) for page in (0, 1, 2, 0, 2, 0, 2, 0, 2)
        ]

        def drive(m, ctx, bp):
            for page, data in bursts:
                store(m, ctx["va"] + page * PAGE_SIZE, data, bp)
            m.logger.flush()

        state = run_pair(build_region(), drive, config=config)
        assert state["logger_stats"]["pmt_fault_count"] > 0

    def test_onchip_logger(self):
        payload = random.Random(12).randbytes(PAGE_SIZE + 200)

        def drive(m, ctx, bp):
            store(m, ctx["va"] + 2, payload, bp)

        state = run_pair(build_region(), drive, config=ONCHIP)
        assert state["onchip"][0] > 0

    def test_onchip_extended_records(self):
        payload = random.Random(13).randbytes(PAGE_SIZE)

        def drive(m, ctx, bp):
            store(m, ctx["va"] + 6, payload, bp)
            store(m, ctx["va"] + 6, payload[::-1], bp)  # rewrite: old values differ

        state = run_pair(
            build_region(extended_records=True), drive, config=ONCHIP
        )
        assert state["onchip"][0] > 0


class TestReadExactness:
    def test_reads_after_writes(self):
        rng = random.Random(14)
        payload = rng.randbytes(3 * PAGE_SIZE)
        reads = [(rng.randrange(3 * PAGE_SIZE - 90), rng.randrange(1, 90))
                 for _ in range(30)]

        def drive(m, ctx, bp):
            store(m, ctx["va"], payload, bp)
            return [load(m, ctx["va"] + off, n, bp) for off, n in reads]

        run_pair(build_region(), drive)

    def test_cold_reads_fault_pages_in(self):
        def drive(m, ctx, bp):
            return load(m, ctx["va"] + 5, 2 * PAGE_SIZE, bp)

        state = run_pair(build_region(logged=False), drive)
        assert state["kernel_stats"]["page_faults"] >= 2


# ----------------------------------------------------------------------
# Access stepping (the shared slow/bulk definition)
# ----------------------------------------------------------------------
class TestAccessSteps:
    def test_halfword_step_used(self):
        assert bulk.access_steps(2, 2) == [(0, 2)]

    def test_mixed_alignment(self):
        assert bulk.access_steps(1, 7) == [(0, 1), (1, 2), (3, 4)]

    def test_aligned_run_with_halfword_tail(self):
        assert bulk.access_steps(0, 10) == [(0, 4), (4, 4), (8, 2)]

    def test_steps_cover_range_exactly(self):
        for va in range(8):
            for length in range(1, 24):
                steps = bulk.access_steps(va, length)
                pos = 0
                for off, size in steps:
                    assert off == pos
                    assert (va + off) % size == 0  # natural alignment
                    pos += size
                assert pos == length

    def test_halfword_store_is_one_access(self):
        # A 2-byte aligned store must be charged as ONE access, not two
        # byte stores: cheaper in both store count and cycles.
        m = boot(BASE)
        try:
            seg = StdSegment(PAGE_SIZE, machine=m)
            region = StdRegion(seg)
            va = region.bind(m.current_process.address_space())
            aspace = m.current_process.address_space()
            cpu = m.cpu(0)
            aspace.write_bytes(cpu, va, b"\0\0\0\0")  # fault + warm the line
            stores_before = cpu.stats.stores
            now_before = cpu.now
            aspace.write_bytes(cpu, va + 2, b"ab")
            assert cpu.stats.stores - stores_before == 1
            one_access = cpu.now - now_before
            # Two single-byte stores to the same warm line cost more.
            now_before = cpu.now
            aspace.write_bytes(cpu, va + 5, b"c")
            aspace.write_bytes(cpu, va + 6, b"d")
            assert cpu.now - now_before == 2 * one_access
        finally:
            set_current_machine(None)


# ----------------------------------------------------------------------
# Translation-cache invalidation (stale fast-path entries must never
# bypass a mapping or protection change)
# ----------------------------------------------------------------------
class TestTranslationCacheInvalidation:
    def setup_machine(self):
        m = boot(BASE)
        seg = StdSegment(2 * PAGE_SIZE, machine=m)
        region = StdRegion(seg)
        va = region.bind(m.current_process.address_space())
        return m, region, va

    def teardown_method(self, method):
        set_current_machine(None)

    def test_protect_range_defeats_cached_entry(self):
        m, region, va = self.setup_machine()
        aspace = m.current_process.address_space()
        cpu = m.cpu(0)
        aspace.write(cpu, va, 1)  # seeds the fast-path cache
        aspace.protect_range(va, va + 1)
        with pytest.raises(ProtectionError):
            aspace.write(cpu, va + 4, 2)
        assert m.kernel.stats.protection_faults == 1

    def test_write_block_sees_new_protection(self):
        m, region, va = self.setup_machine()
        aspace = m.current_process.address_space()
        cpu = m.cpu(0)
        aspace.write_block(cpu, va, b"\1\2\3\4")
        aspace.protect_range(va, va + 1)
        with pytest.raises(ProtectionError):
            aspace.write_block(cpu, va, bytes([5, 6, 7, 8]))
        assert m.kernel.stats.protection_faults == 1

    def test_unprotect_range_restores_fast_path(self):
        m, region, va = self.setup_machine()
        aspace = m.current_process.address_space()
        cpu = m.cpu(0)
        traps = []
        region.protection_handler = lambda reg, vaddr: traps.append(vaddr)
        aspace.write(cpu, va, 1)
        aspace.protect_range(va, va + 1)
        aspace.unprotect_range(va, va + 1)
        aspace.write(cpu, va + 8, 2)  # must not trap
        assert traps == []
        assert m.kernel.stats.protection_faults == 0

    def test_detach_drops_cached_entries(self):
        m, region, va = self.setup_machine()
        aspace = m.current_process.address_space()
        cpu = m.cpu(0)
        aspace.write(cpu, va, 1)
        region.unbind()
        with pytest.raises(UnmappedAddressError):
            aspace.write(cpu, va, 2)
        with pytest.raises(UnmappedAddressError):
            aspace.read(cpu, va)
