"""Tests: RegionLogView translation and LogFollower streaming."""

import pytest

from conftest import make_logged_region
from repro.errors import LoggingError
from repro.core.log_reader import LogFollower, RegionLogView
from repro.core.region import StdRegion
from repro.core.segment import StdSegment
from repro.hw.params import PAGE_SIZE


class TestRegionLogView:
    def test_offset_and_va_translation(self, machine, proc):
        region, log, va = make_logged_region(machine, size=4 * PAGE_SIZE)
        proc.write(va + PAGE_SIZE + 0x24, 7)
        machine.quiesce()
        view = RegionLogView(region)
        (record,) = view.records()
        assert view.offset_of(record) == PAGE_SIZE + 0x24
        assert view.va_of(record) == va + PAGE_SIZE + 0x24

    def test_virtual_records_translated_directly(self, onchip_machine):
        machine = onchip_machine
        proc = machine.current_process
        region, log, va = make_logged_region(machine)
        proc.write(va + 0x40, 1)
        machine.quiesce()
        view = RegionLogView(region)
        (record,) = view.records()
        assert record.is_virtual
        assert view.offset_of(record) == 0x40
        assert view.va_of(record) == va + 0x40

    def test_frame_map_cache_survives_remap(self, machine, proc):
        # Regression: offset_of caches frame->page translations, and a
        # stale hit after the kernel remaps pages (or the allocator
        # reuses a frame number for a different page) must not silently
        # translate a record to the wrong segment offset.
        region, log, va = make_logged_region(machine, size=4 * PAGE_SIZE)
        proc.write(va + 0x10, 1)  # page 0
        proc.write(va + PAGE_SIZE + 0x20, 2)  # page 1
        machine.quiesce()
        view = RegionLogView(region)
        rec0, rec1 = view.records()
        # Populate the cache with the current frame layout.
        assert view.offset_of(rec0) == 0x10
        assert view.offset_of(rec1) == PAGE_SIZE + 0x20
        # Remap: the two pages swap physical frames.  The old records'
        # physical addresses now belong to the *other* page.
        page0 = region.segment.page(0)
        page1 = region.segment.page(1)
        page0.frame, page1.frame = page1.frame, page0.frame
        assert view.offset_of(rec0) == PAGE_SIZE + 0x10
        assert view.offset_of(rec1) == 0x20

    def test_foreign_record_rejected(self, machine, proc):
        region, log, va = make_logged_region(machine)
        view = RegionLogView(region)
        from repro.hw.records import LogRecord

        ghost = LogRecord(addr=0xDEAD000, value=0, size=4, timestamp=0)
        with pytest.raises(LoggingError):
            view.offset_of(ghost)

    def test_requires_a_log(self, machine, proc):
        region = StdRegion(StdSegment(PAGE_SIZE, machine=machine))
        region.bind(proc.address_space())
        with pytest.raises(LoggingError):
            RegionLogView(region)

    def test_updates_stream(self, machine, proc):
        region, log, va = make_logged_region(machine)
        proc.write(va, 10)
        proc.write(va + 8, 20, 2)
        machine.quiesce()
        view = RegionLogView(region)
        assert list(view.updates()) == [(0, 10, 4), (8, 20, 2)]

    def test_apply_to_replays(self, machine, proc):
        region, log, va = make_logged_region(machine)
        for i in range(8):
            proc.write(va + 4 * i, 100 + i)
        machine.quiesce()
        view = RegionLogView(region)
        replica = StdSegment(region.size, machine=machine)
        applied = view.apply_to(replica)
        assert applied == 8
        assert replica.read_bytes(0, 32) == region.segment.read_bytes(0, 32)

    def test_apply_to_with_limit(self, machine, proc):
        from repro.hw.params import LOG_RECORD_SIZE

        region, log, va = make_logged_region(machine)
        for i in range(4):
            proc.write(va + 4 * i, i + 1)
        machine.quiesce()
        view = RegionLogView(region)
        replica = StdSegment(region.size, machine=machine)
        applied = view.apply_to(replica, limit_offset=2 * LOG_RECORD_SIZE)
        assert applied == 2
        assert replica.read(4, 4) == 2
        assert replica.read(8, 4) == 0


class TestLogFollower:
    def test_poll_sees_only_new_records(self, machine, proc):
        region, log, va = make_logged_region(machine)
        follower = LogFollower(RegionLogView(region))
        proc.write(va, 1)
        machine.quiesce()
        assert [r.value for r in follower.poll()] == [1]
        proc.write(va + 4, 2)
        proc.write(va + 8, 3)
        machine.quiesce()
        assert [r.value for r in follower.poll()] == [2, 3]
        assert follower.poll() == []
        assert follower.records_seen == 3

    def test_backlog_tracking(self, machine, proc):
        region, log, va = make_logged_region(machine)
        follower = LogFollower(RegionLogView(region))
        for i in range(5):
            proc.write(va + 4 * i, i)
        machine.quiesce()
        assert follower.backlog_bytes == 5 * 16
        follower.poll()
        assert follower.backlog_bytes == 0

    def test_synchronize_lands_inflight_records(self, machine, proc):
        region, log, va = make_logged_region(machine)
        follower = LogFollower(RegionLogView(region))
        proc.write(va, 42)  # still in the logger pipeline
        records = follower.synchronize()
        assert [r.value for r in records] == [42]

    def test_survives_producer_truncation(self, machine, proc):
        region, log, va = make_logged_region(machine)
        follower = LogFollower(RegionLogView(region))
        proc.write(va, 1)
        machine.quiesce()
        follower.poll()
        log.truncate()  # producer trims consumed history
        proc.write(va + 4, 2)
        machine.quiesce()
        assert [r.value for r in follower.poll()] == [2]
