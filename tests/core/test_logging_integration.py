"""Integration tests: the full logged-region path through the kernel.

These exercise the paper's Figure 1 structure end to end: program
writes → bus → logger → log segment, with logging faults, dynamic
enable/disable, per-process logs, and overload handling.
"""

import pytest

from conftest import make_logged_region
from repro.errors import UnsupportedOperationError
from repro.core.log_segment import LogSegment
from repro.core.process import create_process
from repro.core.region import StdRegion
from repro.core.segment import StdSegment
from repro.hw.logger import LogMode
from repro.hw.params import LOG_RECORD_SIZE, PAGE_SIZE


class TestLoggedRegionEndToEnd:
    def test_every_write_logged_in_order(self, machine, proc):
        region, log, va = make_logged_region(machine)
        for i in range(50):
            proc.write(va + 4 * i, 1000 + i)
        machine.quiesce()
        records = list(log.records())
        assert len(records) == 50
        assert [r.value for r in records] == list(range(1000, 1050))
        assert all(r.size == 4 for r in records)

    def test_log_records_carry_physical_addresses(self, machine, proc):
        """The prototype logs physical addresses (section 3.1.2)."""
        region, log, va = make_logged_region(machine)
        proc.write(va + 0x24, 7)
        machine.quiesce()
        (record,) = log.records()
        frame = region.segment.page(0).frame
        assert record.addr == frame.base_addr + 0x24
        assert not record.is_virtual

    def test_timestamps_monotone(self, machine, proc):
        region, log, va = make_logged_region(machine)
        for i in range(30):
            proc.compute(10)
            proc.write(va + 4 * i, i)
        machine.quiesce()
        stamps = [r.timestamp for r in log.records()]
        assert stamps == sorted(stamps)

    def test_sub_word_writes_logged_with_size(self, machine, proc):
        region, log, va = make_logged_region(machine)
        proc.write(va, 0xAB, 1)
        proc.write(va + 2, 0xCDEF, 2)
        machine.quiesce()
        records = list(log.records())
        assert [(r.value, r.size) for r in records] == [(0xAB, 1), (0xCDEF, 2)]

    def test_unlogged_region_generates_no_records(self, machine, proc):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        va = StdRegion(seg).bind(proc.address_space())
        proc.write(va, 1)
        machine.quiesce()
        assert machine.logger.stats.records_logged == 0

    def test_log_spans_many_pages(self, machine, proc):
        region, log, va = make_logged_region(machine, size=16 * PAGE_SIZE)
        per_page = PAGE_SIZE // LOG_RECORD_SIZE
        n = 3 * per_page + 10
        for i in range(n):
            proc.write(va + 4 * (i % (4 * 1024)), i)
        machine.quiesce()
        assert log.record_count == n
        assert [r.value for r in log.records()] == list(range(n))
        # Page-boundary logging faults occurred and were serviced.
        assert machine.logger.stats.boundary_fault_count >= 3

    def test_writes_to_many_data_pages(self, machine, proc):
        region, log, va = make_logged_region(machine, size=8 * PAGE_SIZE)
        for page in range(8):
            proc.write(va + page * PAGE_SIZE, page)
        machine.quiesce()
        assert log.record_count == 8
        assert machine.kernel.stats.logged_page_faults == 8

    def test_dynamic_disable_and_reenable(self, machine, proc):
        """Logging can be dynamically disabled and re-enabled (2.7)."""
        region, log, va = make_logged_region(machine)
        proc.write(va, 1)
        machine.quiesce()
        region.unlog()
        proc.write(va + 4, 2)  # not logged
        machine.quiesce()
        log2 = LogSegment(machine=machine)
        region.log(log2)
        proc.write(va + 8, 3)
        machine.quiesce()
        assert [r.value for r in log.records()] == [1]
        assert [r.value for r in log2.records()] == [3]
        assert region.segment.read(4, 4) == 2  # the write itself landed

    def test_attach_log_to_already_bound_region(self, machine, proc):
        """A separate program (debugger) can add logging later (2.7)."""
        seg = StdSegment(PAGE_SIZE, machine=machine)
        region = StdRegion(seg)
        va = region.bind(proc.address_space())
        proc.write(va, 1)  # unlogged; faults the page in
        log = LogSegment(machine=machine)
        region.log(log)
        proc.write(va + 4, 2)
        machine.quiesce()
        assert [r.value for r in log.records()] == [2]

    def test_prototype_single_logged_region_per_segment(self, machine, proc):
        """Section 3.1.2: only one logged region per segment."""
        seg = StdSegment(PAGE_SIZE, machine=machine)
        other = create_process(machine, cpu_index=1)
        r1, r2 = StdRegion(seg), StdRegion(seg)
        r1.log(LogSegment(machine=machine))
        r2.log(LogSegment(machine=machine))
        r1.bind(proc.address_space())
        with pytest.raises(UnsupportedOperationError):
            r2.bind(other.address_space())

    def test_unlog_frees_the_slot(self, machine, proc):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        other = create_process(machine, cpu_index=1)
        r1, r2 = StdRegion(seg), StdRegion(seg)
        r1.log(LogSegment(machine=machine))
        r1.bind(proc.address_space())
        r1.unlog()
        r2.log(LogSegment(machine=machine))
        r2.bind(other.address_space())  # now allowed

    def test_pmt_eviction_is_recovered(self, machine, proc):
        """A PMT conflict miss is reloaded by a logging fault (3.2)."""
        region, log, va = make_logged_region(machine)
        proc.write(va, 1)
        machine.quiesce()
        # Evict the entry behind the kernel's back.
        machine.logger.pmt.invalidate(region.segment.page(0).frame.base_addr)
        proc.write(va + 4, 2)
        machine.quiesce()
        assert [r.value for r in log.records()] == [1, 2]
        assert machine.logger.stats.pmt_fault_count >= 1

    def test_default_page_absorption_and_resume(self, machine, proc):
        """Records are lost without extension, recovered after (3.2)."""
        region, log, va = make_logged_region(
            machine, log_kwargs=dict(size=4 * PAGE_SIZE, auto_extend=False, initial_pages=1)
        )
        per_page = PAGE_SIZE // LOG_RECORD_SIZE
        for i in range(per_page + 10):
            proc.write(va + 4 * (i % 1024), i)
        machine.quiesce()
        assert log.lost_records == 10
        assert log.record_count == per_page
        # The user extends the log; logging resumes.
        log.extend(1)
        proc.write(va, 0xBEEF)
        machine.quiesce()
        assert log.lost_records == 10
        assert list(log.records())[-1].value == 0xBEEF


class TestLoggingModes:
    def test_direct_mapped_region(self, machine, proc):
        """Direct-mapped mode mirrors writes at the same offset (2.6)."""
        seg = StdSegment(2 * PAGE_SIZE, machine=machine)
        region = StdRegion(seg)
        log = LogSegment(size=2 * PAGE_SIZE, machine=machine)
        region.log(log, mode=LogMode.DIRECT_MAPPED)
        va = region.bind(proc.address_space())
        proc.write(va + 0x100, 0xAA55)
        proc.write(va + PAGE_SIZE + 0x20, 0x1234)
        machine.quiesce()
        assert log.page(0).frame.read(0x100, 4) == 0xAA55
        assert log.page(1).frame.read(0x20, 4) == 0x1234

    def test_indexed_region_streams_values(self, machine, proc):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        region = StdRegion(seg)
        log = LogSegment(machine=machine)
        region.log(log, mode=LogMode.INDEXED)
        va = region.bind(proc.address_space())
        for v in (5, 10, 15, 20):
            proc.write(va, v)
        machine.quiesce()
        assert list(log.values())[:4] == [5, 10, 15, 20]


class TestOverloadIntegration:
    def test_rapid_writes_overload_and_suspend(self, machine, proc):
        region, log, va = make_logged_region(machine, size=16 * PAGE_SIZE)
        # No compute between writes: far below the stability threshold.
        n = 2000
        for i in range(n):
            proc.write(va + 4 * (i % 4096), i)
        machine.quiesce()
        assert machine.kernel.stats.overloads >= 1
        assert proc.cpu.stats.suspend_cycles > 0
        # No records were lost — they were all logged, just slowly.
        assert log.record_count == n

    def test_spaced_writes_do_not_overload(self, machine, proc):
        region, log, va = make_logged_region(machine)
        for i in range(500):
            proc.compute(40)  # comfortably above the 27-cycle threshold
            proc.write(va + 4 * (i % 1024), i)
        machine.quiesce()
        assert machine.kernel.stats.overloads == 0


class TestOnChipLogger:
    def test_records_carry_virtual_addresses(self, onchip_machine):
        machine = onchip_machine
        proc = machine.current_process
        region, log, va = make_logged_region(machine)
        proc.write(va + 0x30, 42)
        machine.quiesce()
        (record,) = log.records()
        assert record.is_virtual
        assert record.addr == va + 0x30

    def test_per_region_logs_on_same_segment(self, onchip_machine):
        """Section 4.6: per-region logging is directly supported."""
        machine = onchip_machine
        proc = machine.current_process
        other = create_process(machine, cpu_index=1)
        seg = StdSegment(PAGE_SIZE, machine=machine)
        r1, r2 = StdRegion(seg), StdRegion(seg)
        l1, l2 = LogSegment(machine=machine), LogSegment(machine=machine)
        r1.log(l1)
        r2.log(l2)
        va1 = r1.bind(proc.address_space())
        va2 = r2.bind(other.address_space())
        proc.write(va1, 100)
        other.write(va2 + 4, 200)
        machine.quiesce()
        assert [r.value for r in l1.records()] == [100]
        assert [r.value for r in l2.records()] == [200]

    def test_no_overload_ever(self, onchip_machine):
        """Section 4.6: the FIFO overload mechanism is gone."""
        machine = onchip_machine
        proc = machine.current_process
        region, log, va = make_logged_region(machine, size=4 * PAGE_SIZE)
        for i in range(3000):
            proc.write(va + 4 * (i % 1024), i)
        machine.quiesce()
        assert machine.kernel.stats.overloads == 0
        assert log.record_count == 3000

    def test_extended_records_capture_old_value(self, onchip_machine):
        machine = onchip_machine
        proc = machine.current_process
        region, log, va = make_logged_region(
            machine, log_kwargs=dict(extended_records=True)
        )
        proc.write(va, 1)
        proc.write(va, 2)
        machine.quiesce()
        records = list(log.records())
        assert records[0].old_value == 0
        assert records[1].old_value == 1
        assert records[1].value == 2

    def test_extended_records_need_onchip(self, machine, proc):
        with pytest.raises(UnsupportedOperationError):
            make_logged_region(machine, log_kwargs=dict(extended_records=True))

    def test_logged_write_cost_close_to_unlogged(self, onchip_machine):
        """Section 4.6: logged ≈ unlogged cost with on-chip support."""
        machine = onchip_machine
        proc = machine.current_process
        region, log, va = make_logged_region(machine)
        useg = StdSegment(4 * PAGE_SIZE, machine=machine)
        uva = StdRegion(useg).bind(proc.address_space())
        # Touch pages first so faults are excluded.
        proc.write(va, 0)
        proc.write(uva, 0)

        t0 = proc.now
        for i in range(200):
            proc.compute(50)
            proc.write(va + 4 * (i % 1024), i)
        logged = proc.now - t0

        t0 = proc.now
        for i in range(200):
            proc.compute(50)
            proc.write(uva + 4 * (i % 1024), i)
        unlogged = proc.now - t0
        assert logged <= unlogged * 1.1
