"""Unit tests: log segments — extension, truncation, record iteration."""

import pytest

from repro.errors import LoggingError
from repro.core.log_segment import LogSegment
from repro.hw.params import LOG_RECORD_SIZE, PAGE_SIZE
from repro.hw.records import encode_record


def append_raw(log, addr, value, ts):
    """Simulate a hardware append directly (no logger involved)."""
    dest = log.hw_append_paddr()
    assert dest is not None
    log.machine.memory.write_bytes(dest, encode_record(addr, value, 4, ts))
    log.note_append(LOG_RECORD_SIZE)


class TestLogSegment:
    def test_empty_log(self, machine):
        log = LogSegment(machine=machine)
        assert log.record_count == 0
        assert list(log.records()) == []

    def test_append_and_iterate(self, machine):
        log = LogSegment(machine=machine)
        for i in range(5):
            append_raw(log, 4 * i, 100 + i, i)
        assert log.record_count == 5
        values = [r.value for r in log.records()]
        assert values == [100, 101, 102, 103, 104]

    def test_records_with_offsets(self, machine):
        log = LogSegment(machine=machine)
        append_raw(log, 0, 1, 0)
        append_raw(log, 4, 2, 1)
        pairs = list(log.records_with_offsets())
        assert [off for off, _ in pairs] == [0, LOG_RECORD_SIZE]

    def test_truncate_drops_head(self, machine):
        log = LogSegment(machine=machine)
        for i in range(4):
            append_raw(log, 4 * i, i, i)
        log.truncate(2 * LOG_RECORD_SIZE)
        assert [r.value for r in log.records()] == [2, 3]
        assert log.record_count == 2

    def test_truncate_all(self, machine):
        log = LogSegment(machine=machine)
        append_raw(log, 0, 1, 0)
        log.truncate()
        assert list(log.records()) == []
        assert log.record_count == 0

    def test_untruncate_rejected(self, machine):
        log = LogSegment(machine=machine)
        append_raw(log, 0, 1, 0)
        log.truncate()
        with pytest.raises(LoggingError):
            log.truncate(0)

    def test_truncate_beyond_end_rejected(self, machine):
        log = LogSegment(machine=machine)
        with pytest.raises(LoggingError):
            log.truncate(LOG_RECORD_SIZE)

    def test_hw_append_crosses_pages_with_auto_extend(self, machine):
        log = LogSegment(machine=machine, auto_extend=True, initial_pages=1)
        per_page = PAGE_SIZE // LOG_RECORD_SIZE
        for i in range(per_page + 3):
            append_raw(log, 4 * i, i, i)
        assert log.record_count == per_page + 3
        assert log.available_pages == 2

    def test_no_auto_extend_runs_out(self, machine):
        log = LogSegment(
            size=2 * PAGE_SIZE, machine=machine, auto_extend=False, initial_pages=1
        )
        per_page = PAGE_SIZE // LOG_RECORD_SIZE
        for i in range(per_page):
            append_raw(log, 0, i, i)
        assert log.hw_append_paddr() is None
        log.extend(1)
        assert log.hw_append_paddr() is not None

    def test_capacity_is_hard_limit(self, machine):
        log = LogSegment(size=PAGE_SIZE, machine=machine, auto_extend=True)
        per_page = PAGE_SIZE // LOG_RECORD_SIZE
        for i in range(per_page):
            append_raw(log, 0, i, i)
        assert log.hw_append_paddr() is None

    def test_values_iteration_indexed(self, machine):
        log = LogSegment(machine=machine)
        for v in (11, 22, 33):
            dest = log.hw_append_paddr()
            machine.memory.write_bytes(dest, v.to_bytes(4, "little"))
            log.note_append(4)
        assert list(log.values()) == [11, 22, 33]

    def test_extended_sink_pads_page_boundaries(self, machine):
        log = LogSegment(machine=machine, extended_records=True)
        sink = log.make_sink()
        payload = b"\x00" * 24
        per_page = PAGE_SIZE // 24  # 170 whole records, 16 bytes slack
        for _ in range(per_page + 1):
            assert sink(payload) is not None
        # The 171st record must start on the second page.
        assert log.append_offset == PAGE_SIZE + 24

    def test_sink_reports_full(self, machine):
        log = LogSegment(size=PAGE_SIZE, machine=machine, extended_records=True)
        sink = log.make_sink()
        payload = b"\x00" * 24
        for _ in range(PAGE_SIZE // 24):
            assert sink(payload) is not None
        assert sink(payload) is None
        assert log.lost_records == 1

    def test_bad_initial_pages(self, machine):
        with pytest.raises(LoggingError):
            LogSegment(machine=machine, initial_pages=0)

    def test_bad_extend(self, machine):
        log = LogSegment(machine=machine)
        with pytest.raises(LoggingError):
            log.extend(0)
