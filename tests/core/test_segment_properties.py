"""Property tests: segments vs a bytearray shadow model.

Any interleaving of integer and byte-string reads/writes on a segment
must agree with a plain bytearray — including accesses spanning pages
and a deferred-copy source attached midway.
"""

from hypothesis import given, settings, strategies as st

from conftest import TEST_CONFIG
from repro.core.context import boot, set_current_machine
from repro.core.segment import StdSegment
from repro.hw.params import PAGE_SIZE

SEG_BYTES = 3 * PAGE_SIZE

op_strategy = st.one_of(
    st.tuples(
        st.just("write_int"),
        st.integers(0, SEG_BYTES - 4),
        st.integers(0, 2**32 - 1),
        st.sampled_from([1, 2, 4]),
    ),
    st.tuples(
        st.just("write_bytes"),
        st.integers(0, SEG_BYTES - 1),
        st.binary(min_size=1, max_size=64),
        st.none(),
    ),
)


def align(offset, size):
    return (offset // size) * size


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(op_strategy, max_size=40))
def test_property_segment_matches_bytearray(ops):
    machine = boot(TEST_CONFIG)
    try:
        seg = StdSegment(SEG_BYTES, machine=machine)
        shadow = bytearray(SEG_BYTES)
        for kind, offset, payload, size in ops:
            if kind == "write_int":
                offset = align(offset, size)
                seg.write(offset, payload, size)
                masked = payload & ((1 << (8 * size)) - 1)
                shadow[offset : offset + size] = masked.to_bytes(size, "little")
            else:
                data = payload[: SEG_BYTES - offset]
                seg.write_bytes(offset, data)
                shadow[offset : offset + len(data)] = data
        assert seg.snapshot() == bytes(shadow)
        # Spot-check integer reads against the shadow too.
        for size in (1, 2, 4):
            for offset in (0, PAGE_SIZE - size, PAGE_SIZE, SEG_BYTES - size):
                offset = align(offset, size)
                expected = int.from_bytes(shadow[offset : offset + size], "little")
                assert seg.read(offset, size) == expected
    finally:
        set_current_machine(None)


@settings(max_examples=40, deadline=None)
@given(
    before=st.lists(
        st.tuples(st.integers(0, SEG_BYTES // 4 - 1), st.integers(0, 2**32 - 1)),
        max_size=15,
    ),
    after=st.lists(
        st.tuples(st.integers(0, SEG_BYTES // 4 - 1), st.integers(0, 2**32 - 1)),
        max_size=15,
    ),
)
def test_property_source_attach_midway(before, after):
    """Attaching a deferred-copy source discards prior writes; writes
    after the attach shadow the source exactly like a fresh copy."""
    machine = boot(TEST_CONFIG)
    try:
        src = StdSegment(SEG_BYTES, machine=machine)
        for i in range(0, SEG_BYTES, 256):
            src.write(i, i ^ 0x5A5A5A5A, 4)
        dst = StdSegment(SEG_BYTES, machine=machine)
        for word, value in before:
            dst.write(4 * word, value, 4)
        dst.source_segment(src)
        shadow = bytearray(src.snapshot())
        for word, value in after:
            dst.write(4 * word, value, 4)
            shadow[4 * word : 4 * word + 4] = value.to_bytes(4, "little")
        assert dst.snapshot() == bytes(shadow)
    finally:
        set_current_machine(None)
