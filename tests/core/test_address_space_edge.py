"""Edge-case tests: address-space mechanics not covered elsewhere."""

import pytest

from repro.errors import SegmentError, UnmappedAddressError
from repro.core.address_space import AddressSpace
from repro.core.log_segment import LogSegment
from repro.core.process import create_process
from repro.core.region import StdRegion
from repro.core.segment import StdSegment
from repro.hw.params import PAGE_SIZE


class TestUnbindRebind:
    def test_unbind_drops_mappings(self, machine, proc):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        region = StdRegion(seg)
        va = region.bind(proc.address_space())
        proc.write(va, 1)
        region.unbind()
        with pytest.raises(UnmappedAddressError):
            proc.read(va)

    def test_rebind_elsewhere_sees_same_data(self, machine, proc):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        region = StdRegion(seg)
        va1 = region.bind(proc.address_space())
        proc.write(va1, 0x77)
        region.unbind()
        va2 = region.bind(proc.address_space(), 0x5000_0000)
        assert va2 != va1
        assert proc.read(va2) == 0x77

    def test_unbind_logged_region_invalidates_pmt(self, machine, proc):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        region = StdRegion(seg)
        region.log(LogSegment(machine=machine))
        va = region.bind(proc.address_space())
        proc.write(va, 1)
        machine.quiesce()
        frame_base = seg.page(0).frame.base_addr
        region.unbind()
        assert machine.logger.pmt.lookup(frame_base) is None

    def test_logged_region_unbind_rebind_keeps_logging(self, machine, proc):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        region = StdRegion(seg)
        log = LogSegment(machine=machine)
        region.log(log)
        va = region.bind(proc.address_space())
        proc.write(va, 1)
        machine.quiesce()
        region.unbind()
        va = region.bind(proc.address_space())
        proc.write(va, 2)
        machine.quiesce()
        assert [r.value for r in log.records()] == [1, 2]


class TestAccessRules:
    def test_cross_page_word_access_rejected(self, machine, proc):
        seg = StdSegment(2 * PAGE_SIZE, machine=machine)
        va = StdRegion(seg).bind(proc.address_space())
        with pytest.raises(SegmentError):
            proc.read(va + PAGE_SIZE - 2, 4)

    def test_region_at(self, machine, proc):
        aspace = proc.address_space()
        seg = StdSegment(PAGE_SIZE, machine=machine)
        region = StdRegion(seg)
        va = region.bind(aspace)
        assert aspace.region_at(va) is region
        assert aspace.region_at(va + PAGE_SIZE - 1) is region
        with pytest.raises(UnmappedAddressError):
            aspace.region_at(va + PAGE_SIZE)

    def test_many_regions_round_trip(self, machine, proc):
        aspace = proc.address_space()
        regions = []
        for i in range(12):
            seg = StdSegment(PAGE_SIZE * (1 + i % 3), machine=machine)
            region = StdRegion(seg)
            va = region.bind(aspace)
            proc.write(va, 1000 + i)
            regions.append((region, va))
        for i, (region, va) in enumerate(regions):
            assert proc.read(va) == 1000 + i
            assert aspace.region_at(va) is region

    def test_address_spaces_are_isolated(self, machine, proc):
        other = create_process(machine, cpu_index=1)
        seg_a = StdSegment(PAGE_SIZE, machine=machine)
        seg_b = StdSegment(PAGE_SIZE, machine=machine)
        va_a = StdRegion(seg_a).bind(proc.address_space())
        va_b = StdRegion(seg_b).bind(other.address_space())
        proc.write(va_a, 0xA)
        other.write(va_b, 0xB)
        # Same default VA layout, different backing segments.
        assert va_a == va_b
        assert proc.read(va_a) == 0xA
        assert other.read(va_b) == 0xB

    def test_cross_machine_bind_rejected(self, machine):
        from conftest import TEST_CONFIG
        from repro.errors import BindError
        from repro.core.context import boot, set_current_machine

        other_machine = boot(TEST_CONFIG)
        try:
            seg = StdSegment(PAGE_SIZE, machine=machine)
            region = StdRegion(seg)
            with pytest.raises(BindError):
                region.bind(AddressSpace(other_machine))
        finally:
            set_current_machine(None)

    def test_cross_machine_log_rejected(self, machine):
        from conftest import TEST_CONFIG
        from repro.errors import LoggingError
        from repro.core.context import boot, set_current_machine

        other_machine = boot(TEST_CONFIG)
        try:
            seg = StdSegment(PAGE_SIZE, machine=machine)
            region = StdRegion(seg)
            with pytest.raises(LoggingError):
                region.log(LogSegment(machine=other_machine))
        finally:
            set_current_machine(None)
