"""Logger-design-independent semantics.

Everything in this suite must hold for BOTH the prototype bus logger
and the section 4.6 on-chip logger: applications written against the
LVM API cannot tell them apart except through addressing mode and
performance.
"""

import pytest

from conftest import TEST_CONFIG, TEST_CONFIG_ONCHIP, make_logged_region
from repro.core.context import boot, set_current_machine
from repro.core.log_segment import LogSegment
from repro.core.segment import StdSegment
from repro.hw.params import PAGE_SIZE


@pytest.fixture(params=["prototype", "onchip"])
def any_machine(request):
    config = TEST_CONFIG if request.param == "prototype" else TEST_CONFIG_ONCHIP
    machine = boot(config)
    yield machine
    set_current_machine(None)


class TestCommonLoggingSemantics:
    def test_order_and_completeness(self, any_machine):
        machine = any_machine
        proc = machine.current_process
        region, log, va = make_logged_region(machine)
        for i in range(40):
            proc.write(va + 4 * (i % 64), i)
        machine.quiesce()
        assert [r.value for r in log.records()] == list(range(40))
        assert log.lost_records == 0

    def test_timestamps_monotone(self, any_machine):
        machine = any_machine
        proc = machine.current_process
        region, log, va = make_logged_region(machine)
        for i in range(25):
            proc.compute(13)
            proc.write(va + 4 * i, i)
        machine.quiesce()
        stamps = [r.timestamp for r in log.records()]
        assert stamps == sorted(stamps)

    def test_dynamic_enable_disable(self, any_machine):
        machine = any_machine
        proc = machine.current_process
        region, log, va = make_logged_region(machine)
        proc.write(va, 1)
        machine.quiesce()
        region.unlog()
        proc.write(va + 4, 2)
        log2 = LogSegment(machine=machine)
        region.log(log2)
        proc.write(va + 8, 3)
        machine.quiesce()
        assert [r.value for r in log.records()] == [1]
        assert [r.value for r in log2.records()] == [3]

    def test_truncation(self, any_machine):
        machine = any_machine
        proc = machine.current_process
        region, log, va = make_logged_region(machine)
        for i in range(6):
            proc.write(va + 4 * i, i)
        machine.quiesce()
        log.truncate()
        proc.write(va, 99)
        machine.quiesce()
        assert [r.value for r in log.records()] == [99]

    def test_multi_page_log_growth(self, any_machine):
        machine = any_machine
        proc = machine.current_process
        region, log, va = make_logged_region(machine, size=4 * PAGE_SIZE)
        n = 2 * (PAGE_SIZE // 16) + 7
        for i in range(n):
            proc.write(va + 4 * (i % 1024), i)
        machine.quiesce()
        assert log.record_count == n
        assert log.available_pages >= 3

    def test_replay_reconstructs_state(self, any_machine):
        from repro.core.log_reader import RegionLogView

        machine = any_machine
        proc = machine.current_process
        region, log, va = make_logged_region(machine)
        for i in range(30):
            proc.write(va + 4 * (i * 7 % 100), i * 3)
        machine.quiesce()
        replica = StdSegment(region.size, machine=machine)
        RegionLogView(region).apply_to(replica)
        assert replica.snapshot() == region.segment.snapshot()

    def test_subword_sizes(self, any_machine):
        machine = any_machine
        proc = machine.current_process
        region, log, va = make_logged_region(machine)
        proc.write(va, 0x11, 1)
        proc.write(va + 2, 0x2222, 2)
        proc.write(va + 4, 0x33333333, 4)
        machine.quiesce()
        assert [(r.value, r.size) for r in log.records()] == [
            (0x11, 1),
            (0x2222, 2),
            (0x33333333, 4),
        ]

    def test_write_monitor_works_on_both(self, any_machine):
        from repro.debugger import WriteMonitor

        machine = any_machine
        proc = machine.current_process
        region, log, va = make_logged_region(machine)
        monitor = WriteMonitor(region, consume=False)
        monitor.watch(va + 8)
        proc.write(va + 8, 0xAB)
        hits, _ = monitor.poll()
        assert [h.vaddr for h in hits] == [va + 8]
