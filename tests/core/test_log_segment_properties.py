"""Property test: log segment append/truncate/rewind vs a list model.

Random interleavings of logged writes, head truncations and tail
rewinds must leave the log holding exactly what a plain Python list
under the same operations holds — with the hardware append pointer
staying consistent throughout (new records always land after a rewind
point, never on top of retained ones).
"""

from hypothesis import given, settings, strategies as st

from conftest import TEST_CONFIG, make_logged_region
from repro.core.context import boot, set_current_machine
from repro.hw.params import LOG_RECORD_SIZE, PAGE_SIZE

op_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 2**32 - 1)),
        st.tuples(st.just("truncate"), st.floats(0, 1)),
        st.tuples(st.just("rewind"), st.floats(0, 1)),
    ),
    max_size=50,
)


@settings(max_examples=40, deadline=None)
@given(ops=op_strategy)
def test_property_log_ops_match_list_model(ops):
    machine = boot(TEST_CONFIG)
    try:
        proc = machine.current_process
        region, log, va = make_logged_region(machine, size=PAGE_SIZE)
        model: list[int] = []  # values the log should retain
        counter = 0
        for op, arg in ops:
            if op == "write":
                proc.write(va + 4 * (counter % 1024), arg)
                counter += 1
                model.append(arg)
            elif op == "truncate":
                machine.quiesce()
                keep_from = int(len(model) * arg)
                # Translate "drop the first keep_from records" into a
                # log offset: the retained range shrinks at the head.
                offsets = [o for o, _ in log.records_with_offsets()]
                if keep_from > 0 and offsets:
                    log.truncate(
                        offsets[keep_from] if keep_from < len(offsets)
                        else log.append_offset
                    )
                    model = model[keep_from:]
            else:  # rewind
                machine.quiesce()
                keep = int(len(model) * arg)
                offsets = [o for o, _ in log.records_with_offsets()]
                if offsets:
                    cut = (
                        offsets[keep] if keep < len(offsets)
                        else log.append_offset
                    )
                    log.rewind(cut)
                    model = model[:keep]
        machine.quiesce()
        assert [r.value for r in log.records()] == model
        assert log.record_count == len(model)
        assert log.lost_records == 0
        # Append pointer stays 16-byte aligned and past the retained data.
        assert log.append_offset % LOG_RECORD_SIZE == 0
        assert log.append_offset >= log.start_offset
    finally:
        set_current_machine(None)
