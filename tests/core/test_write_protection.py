"""Tests: the VM's write-protection machinery (section 5.1 extension)."""

import pytest

from repro.errors import ProtectionError
from repro.core.region import StdRegion
from repro.core.segment import StdSegment
from repro.hw.params import PAGE_SIZE


def make_region(machine, proc, npages=4):
    seg = StdSegment(npages * PAGE_SIZE, machine=machine)
    region = StdRegion(seg)
    va = region.bind(proc.address_space())
    return region, va


class TestProtection:
    def test_protected_write_without_handler_raises(self, machine, proc):
        region, va = make_region(machine, proc)
        proc.write(va, 1)  # map the page first
        proc.address_space().protect_range(va, va + PAGE_SIZE, cpu=proc.cpu)
        with pytest.raises(ProtectionError):
            proc.write(va, 2)
        assert proc.read(va) == 1  # the store did not land

    def test_reads_unaffected_by_protection(self, machine, proc):
        region, va = make_region(machine, proc)
        proc.write(va, 5)
        proc.address_space().protect_range(va, va + PAGE_SIZE, cpu=proc.cpu)
        assert proc.read(va) == 5

    def test_handler_unprotects_and_write_proceeds(self, machine, proc):
        region, va = make_region(machine, proc)
        traps = []

        def handler(reg, addr):
            traps.append(addr)
            reg.protected_pages.discard(reg.va_to_offset(addr) // PAGE_SIZE)

        region.protection_handler = handler
        proc.write(va, 1)
        proc.address_space().protect_range(va, va + PAGE_SIZE, cpu=proc.cpu)
        proc.write(va, 2)
        assert proc.read(va) == 2
        assert traps == [va]
        # Second write to the now-unprotected page: no trap.
        proc.write(va + 4, 3)
        assert traps == [va]

    def test_trap_charges_trap_cycles(self, machine, proc):
        region, va = make_region(machine, proc)
        region.protection_handler = lambda reg, addr: reg.protected_pages.clear()
        proc.write(va, 1)
        proc.address_space().protect_range(va, va + PAGE_SIZE, cpu=proc.cpu)
        t0 = proc.now
        proc.write(va, 2)
        assert proc.now - t0 >= machine.config.protection_trap_cycles

    def test_protection_applies_to_unmapped_pages_at_fault(self, machine, proc):
        """Protecting a not-yet-faulted page takes effect when the PTE
        is created."""
        region, va = make_region(machine, proc)
        proc.address_space().protect_range(
            va + PAGE_SIZE, va + 2 * PAGE_SIZE, cpu=proc.cpu
        )
        with pytest.raises(ProtectionError):
            proc.write(va + PAGE_SIZE, 1)

    def test_unprotect_range(self, machine, proc):
        region, va = make_region(machine, proc)
        proc.write(va, 1)
        aspace = proc.address_space()
        aspace.protect_range(va, va + PAGE_SIZE, cpu=proc.cpu)
        aspace.unprotect_range(va, va + PAGE_SIZE, cpu=proc.cpu)
        proc.write(va, 2)  # no trap
        assert proc.read(va) == 2

    def test_per_page_granularity(self, machine, proc):
        region, va = make_region(machine, proc)
        proc.write(va, 0)
        proc.write(va + PAGE_SIZE, 0)
        proc.address_space().protect_range(va, va + PAGE_SIZE, cpu=proc.cpu)
        proc.write(va + PAGE_SIZE, 7)  # second page unprotected
        with pytest.raises(ProtectionError):
            proc.write(va, 7)

    def test_protection_fault_counted(self, machine, proc):
        region, va = make_region(machine, proc)
        region.protection_handler = lambda reg, addr: reg.protected_pages.clear()
        proc.write(va, 0)
        proc.address_space().protect_range(va, va + PAGE_SIZE, cpu=proc.cpu)
        proc.write(va, 1)
        assert machine.kernel.stats.protection_faults == 1

    def test_protection_composes_with_logging(self, machine, proc):
        """A logged, protected page: the trap fires first; once the
        handler unprotects, the store is logged normally."""
        from repro.core.log_segment import LogSegment

        region, va = make_region(machine, proc)
        log = LogSegment(machine=machine)
        region.log(log)
        region.protection_handler = lambda reg, addr: reg.protected_pages.clear()
        proc.write(va, 1)
        proc.address_space().protect_range(va, va + PAGE_SIZE, cpu=proc.cpu)
        proc.write(va, 2)
        machine.quiesce()
        assert [r.value for r in log.records()] == [1, 2]
