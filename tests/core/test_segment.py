"""Unit tests: segments, pages, and functional data access."""

import pytest

from repro.errors import SegmentError
from repro.core.segment import SegmentManager, StdSegment
from repro.hw.params import PAGE_SIZE


class TestSegmentBasics:
    def test_size_rounds_up_to_pages(self, machine):
        seg = StdSegment(100, machine=machine)
        assert seg.size == PAGE_SIZE
        assert seg.num_pages == 1

    def test_zero_size_rejected(self, machine):
        with pytest.raises(SegmentError):
            StdSegment(0, machine=machine)

    def test_lazy_frame_allocation(self, machine):
        seg = StdSegment(10 * PAGE_SIZE, machine=machine)
        assert seg.resident_pages == 0
        seg.write(5 * PAGE_SIZE, 1, 4)
        assert seg.resident_pages == 1

    def test_read_unallocated_is_zero(self, machine):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        assert seg.read(0, 4) == 0

    def test_write_read_roundtrip(self, machine):
        seg = StdSegment(2 * PAGE_SIZE, machine=machine)
        seg.write(PAGE_SIZE + 8, 0xABCD, 4)
        assert seg.read(PAGE_SIZE + 8, 4) == 0xABCD

    def test_out_of_range_rejected(self, machine):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        with pytest.raises(SegmentError):
            seg.read(PAGE_SIZE, 4)
        with pytest.raises(SegmentError):
            seg.write(-4, 0, 4)

    def test_bytes_span_pages(self, machine):
        seg = StdSegment(2 * PAGE_SIZE, machine=machine)
        data = bytes(range(1, 9))
        seg.write_bytes(PAGE_SIZE - 4, data)
        assert seg.read_bytes(PAGE_SIZE - 4, 8) == data

    def test_read_bytes_unallocated_page_is_zero(self, machine):
        seg = StdSegment(2 * PAGE_SIZE, machine=machine)
        assert seg.read_bytes(0, 16) == bytes(16)

    def test_snapshot(self, machine):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        seg.write(0, 0x11223344, 4)
        snap = seg.snapshot()
        assert len(snap) == PAGE_SIZE
        assert snap[:4] == bytes([0x44, 0x33, 0x22, 0x11])

    def test_page_out_of_range(self, machine):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        with pytest.raises(SegmentError):
            seg.page(1)

    def test_segment_manager_hook(self, machine):
        class FillManager(SegmentManager):
            def handle_fault(self, segment, page_index, frame):
                frame.write(0, 0x42, 1)

        seg = StdSegment(PAGE_SIZE, segment_manager=FillManager(), machine=machine)
        assert seg.read(0, 1) == 0x42

    def test_uses_current_machine_by_default(self, machine):
        seg = StdSegment(PAGE_SIZE)
        assert seg.machine is machine
