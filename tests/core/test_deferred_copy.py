"""Deferred copy semantics (sections 2.3 / 3.3) + property tests.

The defining property: a deferred-copy destination must be
indistinguishable from a segment initialised by copying the source,
and ``reset_deferred_copy`` must be indistinguishable from re-copying.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SegmentError
from repro.core.deferred_copy import ResetStats, reset_cost_cycles
from repro.core.segment import StdSegment
from repro.hw.params import LINE_SIZE, PAGE_SIZE, MachineConfig


def make_pair(machine, npages=4, fill=True):
    src = StdSegment(npages * PAGE_SIZE, machine=machine)
    if fill:
        for i in range(npages * PAGE_SIZE // 64):
            src.write(64 * i, i + 1, 4)
    dst = StdSegment(npages * PAGE_SIZE, machine=machine)
    dst.source_segment(src)
    return src, dst


class TestDeferredCopySemantics:
    def test_initial_reads_come_from_source(self, machine):
        src, dst = make_pair(machine)
        assert dst.read(64, 4) == src.read(64, 4) == 2

    def test_write_shadows_source(self, machine):
        src, dst = make_pair(machine)
        dst.write(64, 999, 4)
        assert dst.read(64, 4) == 999
        assert src.read(64, 4) == 2  # "leaving A unchanged"

    def test_partial_line_write_preserves_source_bytes(self, machine):
        src, dst = make_pair(machine)
        src.write_bytes(0, bytes(range(16)))
        dst.write(4, 0xFF, 1)  # 1-byte write in the middle of the line
        got = dst.read_bytes(0, 16)
        expected = bytearray(range(16))
        expected[4] = 0xFF
        assert got == bytes(expected)

    def test_reset_restores_source_view(self, machine):
        src, dst = make_pair(machine)
        dst.write(64, 999, 4)
        dst.reset_deferred_copy()
        assert dst.read(64, 4) == 2

    def test_reset_equals_bcopy_functionally(self, machine):
        """resetDeferredCopy ≡ copying A to B (section 2.3)."""
        src, dst = make_pair(machine)
        for off in range(0, dst.size, 128):
            dst.write(off, 0xBAD, 4)
        dst.reset_deferred_copy()
        assert dst.snapshot() == src.snapshot()

    def test_reset_range_only(self, machine):
        src, dst = make_pair(machine)
        dst.write(0, 111, 4)  # page 0
        dst.write(PAGE_SIZE, 222, 4)  # page 1
        dst.reset_deferred_copy(0, PAGE_SIZE)
        assert dst.read(0, 4) == src.read(0, 4)
        assert dst.read(PAGE_SIZE, 4) == 222

    def test_reset_stats_counts(self, machine):
        src, dst = make_pair(machine, npages=4)
        dst.write(0, 1, 4)
        dst.write(4, 2, 4)  # same line
        dst.write(LINE_SIZE, 3, 4)  # second line, same page
        dst.write(PAGE_SIZE, 4, 4)  # second page
        stats = dst.reset_deferred_copy()
        assert stats.pages_scanned == 4
        assert stats.dirty_pages == 2
        assert stats.dirty_lines == 3

    def test_reset_without_source_rejected(self, machine):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        with pytest.raises(SegmentError):
            seg.reset_deferred_copy()

    def test_self_source_rejected(self, machine):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        with pytest.raises(SegmentError):
            seg.source_segment(seg)

    def test_source_too_small_rejected(self, machine):
        small = StdSegment(PAGE_SIZE, machine=machine)
        big = StdSegment(2 * PAGE_SIZE, machine=machine)
        with pytest.raises(SegmentError):
            big.source_segment(small)

    def test_source_with_offset(self, machine):
        src = StdSegment(2 * PAGE_SIZE, machine=machine)
        src.write(PAGE_SIZE + 8, 77, 4)
        dst = StdSegment(PAGE_SIZE, machine=machine)
        dst.source_segment(src, offset=PAGE_SIZE)
        assert dst.read(8, 4) == 77

    def test_attaching_source_clears_prior_writes(self, machine):
        src = StdSegment(PAGE_SIZE, machine=machine)
        src.write(0, 5, 4)
        dst = StdSegment(PAGE_SIZE, machine=machine)
        dst.write(0, 9, 4)
        dst.source_segment(src)
        assert dst.read(0, 4) == 5

    def test_byte_reads_merge_dirty_and_clean_lines(self, machine):
        src, dst = make_pair(machine)
        src.write_bytes(0, b"A" * 48)
        dst.write_bytes(16, b"B" * 16)  # exactly the middle line
        assert dst.read_bytes(0, 48) == b"A" * 16 + b"B" * 16 + b"A" * 16


class TestResetCostModel:
    def test_clean_reset_is_cheap(self):
        config = MachineConfig()
        clean = reset_cost_cycles(config, ResetStats(pages_scanned=512))
        dirty = reset_cost_cycles(
            config, ResetStats(pages_scanned=512, dirty_pages=512, dirty_lines=512 * 256)
        )
        assert clean < dirty / 100

    def test_cost_monotone_in_dirtiness(self):
        config = MachineConfig()
        costs = [
            reset_cost_cycles(
                config,
                ResetStats(pages_scanned=8, dirty_pages=d, dirty_lines=256 * d),
            )
            for d in range(9)
        ]
        assert costs == sorted(costs)
        assert costs[0] < costs[-1]


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(0, 2 * PAGE_SIZE // 4 - 1),  # word index
            st.integers(0, 2**32 - 1),
        ),
        max_size=60,
    ),
    reset_points=st.sets(st.integers(0, 59), max_size=5),
)
def test_property_dc_matches_shadow_copy(ops, reset_points):
    """Deferred copy behaves exactly like a real copy, under any op mix.

    A shadow model keeps an explicit copied buffer; after every write
    and every reset, the deferred-copy destination must agree with it.
    """
    from repro.core.context import boot, set_current_machine

    machine = boot(MachineConfig(memory_bytes=8 * 1024 * 1024))
    try:
        src = StdSegment(2 * PAGE_SIZE, machine=machine)
        for i in range(0, 2 * PAGE_SIZE, 4):
            src.write(i, (i * 2654435761) & 0xFFFFFFFF, 4)
        dst = StdSegment(2 * PAGE_SIZE, machine=machine)
        dst.source_segment(src)
        shadow = bytearray(src.snapshot())

        for step, (word, value) in enumerate(ops):
            if step in reset_points:
                dst.reset_deferred_copy()
                shadow = bytearray(src.snapshot())
            dst.write(word * 4, value, 4)
            shadow[word * 4 : word * 4 + 4] = value.to_bytes(4, "little")

        assert dst.snapshot() == bytes(shadow)
        assert src.snapshot() != b""  # source untouched by construction
    finally:
        set_current_machine(None)
