"""Tests: mapped-I/O output device, state visualizer, mapped files."""

import pytest

from conftest import make_logged_region
from repro.errors import LVMError
from repro.core.log_reader import RegionLogView
from repro.core.mapped_file import MappedFile
from repro.core.process import create_process
from repro.output import MappedOutputDevice, StateVisualizer
from repro.rvm.ramdisk import RamDisk
from repro.hw.params import PAGE_SIZE


class TestMappedOutputDevice:
    def test_writes_appear_on_device(self, machine, proc):
        display = MappedOutputDevice(proc, width=16, height=4)
        display.text(2, 1, "HELLO")
        rows = display.refresh()
        assert rows[1][2:7] == "HELLO"

    def test_readback_served_by_memory(self, machine, proc):
        display = MappedOutputDevice(proc, width=8, height=2)
        display.put(3, 0, "X")
        assert display.readback(3, 0) == "X"

    def test_overwrite_updates_device(self, machine, proc):
        display = MappedOutputDevice(proc, width=8, height=1)
        display.put(0, 0, "A")
        display.put(0, 0, "B")
        assert display.refresh()[0][0] == "B"

    def test_out_of_bounds_rejected(self, machine, proc):
        display = MappedOutputDevice(proc, width=8, height=2)
        with pytest.raises(LVMError):
            display.put(8, 0, "X")
        with pytest.raises(LVMError):
            MappedOutputDevice(proc, width=0)

    def test_device_memory_is_not_the_backing_memory(self, machine, proc):
        display = MappedOutputDevice(proc, width=8, height=1)
        display.put(1, 0, "Z")
        machine.quiesce()
        assert display.device_memory is not display.backing
        assert display.device_memory.read_bytes(1, 1) == b"Z"
        assert display.backing.read_bytes(1, 1) == b"Z"


class TestStateVisualizer:
    def make(self, machine):
        app = machine.current_process
        out = create_process(machine, cpu_index=1)
        region, log, va = make_logged_region(machine, size=PAGE_SIZE)
        viz = StateVisualizer(
            out, region, watch=[("alpha", 0), ("beta", 4)], bar_scale=1
        )
        return app, out, region, va, viz

    def test_replica_tracks_watched_cells(self, machine):
        app, out, region, va, viz = self.make(machine)
        app.write(va, 7)
        app.write(va + 4, 3)
        app.write(va + 8, 999)  # unwatched
        viz.synchronize()
        assert viz.value("alpha") == 7
        assert viz.value("beta") == 3

    def test_render_frame(self, machine):
        app, out, region, va, viz = self.make(machine)
        app.write(va, 5)
        machine.quiesce()
        frame = viz.render()
        assert frame.updates_consumed == 1
        assert any("alpha" in line and "#####" in line for line in frame.lines)

    def test_interpretation_charged_to_output_cpu(self, machine):
        """The offloading claim: the application CPU pays nothing for
        visualisation; the output CPU pays per record."""
        app, out, region, va, viz = self.make(machine)
        for i in range(50):
            app.write(va, i)
        machine.quiesce()
        app_before = app.now
        out_before = out.now
        viz.poll()
        assert app.now == app_before
        assert out.now > out_before

    def test_backlog_and_incremental_polls(self, machine):
        app, out, region, va, viz = self.make(machine)
        app.write(va, 1)
        machine.quiesce()
        assert viz.poll() == 1
        assert viz.poll() == 0
        app.write(va, 2)
        machine.quiesce()
        assert viz.backlog_bytes > 0
        viz.poll()
        assert viz.value("alpha") == 2

    def test_unlogged_region_rejected(self, machine):
        from repro.core.region import StdRegion
        from repro.core.segment import StdSegment

        proc = machine.current_process
        region = StdRegion(StdSegment(PAGE_SIZE, machine=machine))
        region.bind(proc.address_space())
        with pytest.raises(LVMError):
            StateVisualizer(proc, region, watch=[("x", 0)])


class TestMappedFile:
    def make(self, machine, proc, content=b"file contents here"):
        disk = RamDisk(1 << 16)
        disk.poke(0, content)
        mf = MappedFile(proc, disk, file_offset=0, file_bytes=2 * PAGE_SIZE)
        return disk, mf

    def test_pages_fault_in_from_file(self, machine, proc):
        disk, mf = self.make(machine, proc)
        data = proc.read_bytes(mf.base_va, 18)
        assert data == b"file contents here"
        assert mf.manager.pages_faulted_in == 1

    def test_msync_writes_back(self, machine, proc):
        disk, mf = self.make(machine, proc)
        proc.write_bytes(mf.base_va, b"EDITED")
        mf.msync()
        assert disk.peek(0, 6) == b"EDITED"

    def test_incremental_msync_from_log(self, machine, proc):
        from repro.core.log_segment import LogSegment

        disk, mf = self.make(machine, proc)
        log = LogSegment(machine=proc.machine)
        mf.region.log(log)
        proc.write(mf.base_va + 100, 0xAABBCCDD)
        proc.machine.quiesce()
        view = RegionLogView(mf.region, log)
        ops_before = disk.write_ops
        written = mf.msync_from_log(view)
        assert written == 4
        assert disk.peek(100, 4) == (0xAABBCCDD).to_bytes(4, "little")
        # Far fewer I/O bytes than a full msync of the resident page.
        assert disk.write_ops == ops_before + 1

    def test_beyond_eof_zero_filled(self, machine, proc):
        disk = RamDisk(1 << 16)
        disk.poke(0, b"x" * 10)
        mf = MappedFile(proc, disk, file_offset=0, file_bytes=PAGE_SIZE)
        # Mapping is one page; a second StdSegment page would be EOF.
        assert proc.read(mf.base_va + PAGE_SIZE - 4) == 0

    def test_unaligned_file_offset_rejected(self, machine, proc):
        from repro.errors import SegmentError

        disk = RamDisk(1 << 16)
        with pytest.raises(SegmentError):
            MappedFile(proc, disk, file_offset=100, file_bytes=PAGE_SIZE)
