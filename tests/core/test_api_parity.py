"""The paper's section 2.2 code sample, transliterated, must work as-is.

.. code-block:: c++

    Segment * seg_a = new StdSegment(size);
    Region * reg_r = new StdRegion(seg_a);
    LogSegment * ls = new LogSegment();
    reg_r->log(ls);
    as = thisProcess()->addressSpace();
    reg_r->bind(as);
"""

from repro import (
    LogSegment,
    StdRegion,
    StdSegment,
    boot,
    set_current_machine,
    this_process,
)
from repro.core.process import thisProcess
from repro.hw.params import MachineConfig


def test_section_2_2_code_sample():
    machine = boot(MachineConfig(memory_bytes=8 * 1024 * 1024))
    try:
        size = 4096
        seg_a = StdSegment(size)
        reg_r = StdRegion(seg_a)
        # "the two lines to create a new LogSegment and associate it
        # with the region" (section 2.2)
        ls = LogSegment()
        reg_r.log(ls)
        aspace = thisProcess().addressSpace()
        va = reg_r.bind(aspace)

        proc = this_process()
        proc.write(va, 0x1111)
        machine.quiesce()
        assert [r.value for r in ls.records()] == [0x1111]
    finally:
        set_current_machine(None)


def test_table1_style_aliases_exist():
    machine = boot(MachineConfig(memory_bytes=8 * 1024 * 1024))
    try:
        seg = StdSegment(4096)
        dst = StdSegment(4096)
        # Table 1: Segment::sourceSegment(source, offset)
        dst.sourceSegment(seg)
        region = StdRegion(dst)
        aspace = this_process().addressSpace()
        va = region.bind(aspace)
        # Table 1: AddressSpace::resetDeferredCopy(start, end)
        aspace.resetDeferredCopy(va, va + 4096)
    finally:
        set_current_machine(None)


def test_log_segment_is_a_segment():
    """'LogSegment is also derived from Segment' (Table 1)."""
    from repro.core.segment import Segment

    machine = boot(MachineConfig(memory_bytes=8 * 1024 * 1024))
    try:
        assert issubclass(LogSegment, Segment)
        # A log segment can itself be mapped into an address space so
        # the same (or a different) application can read the records
        # (section 2.1).
        ls = LogSegment(size=4096)
        region = StdRegion(ls)
        va = region.bind(this_process().addressSpace())
        assert this_process().read(va) == 0
    finally:
        set_current_machine(None)
