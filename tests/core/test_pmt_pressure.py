"""PMT conflict behaviour under logging load (section 3.1.1).

The page mapping table is direct mapped: two physical pages whose page
numbers share the low 15 bits evict each other.  Writes alternating
between two conflicting pages thrash the PMT — every write takes a
logging fault — yet no records are lost; a larger index width makes the
conflict disappear.  (This is the software-visible cost of the
prototype's "direct-mapped TLB-like structure".)
"""


from repro.core.context import boot, set_current_machine
from repro.core.log_segment import LogSegment
from repro.core.region import StdRegion
from repro.core.segment import StdSegment
from repro.hw.params import PAGE_SIZE, MachineConfig


def build_conflicting_setup(index_bits):
    """Two logged pages whose frames conflict in a small PMT."""
    config = MachineConfig(
        memory_bytes=512 * 1024 * 1024, pmt_index_bits=index_bits
    )
    machine = boot(config)
    proc = machine.current_process
    stride_frames = 1 << index_bits  # same index, different tag

    seg = StdSegment(2 * PAGE_SIZE, machine=machine)
    region = StdRegion(seg)
    log = LogSegment(machine=machine)
    region.log(log)
    va = region.bind(proc.address_space())

    # Fault page 0 in, then burn frames so page 1 lands on a
    # conflicting frame number.
    proc.write(va, 0)
    frame0 = seg.page(0).frame.number
    while machine.memory._next_free % stride_frames != frame0 % stride_frames:
        machine.memory.allocate_frame()
    proc.write(va + PAGE_SIZE, 0)
    frame1 = seg.page(1).frame.number
    assert frame0 % stride_frames == frame1 % stride_frames
    machine.quiesce()
    return machine, proc, va, log


class TestPmtConflicts:
    def test_alternating_pages_thrash_small_pmt(self):
        machine, proc, va, log = build_conflicting_setup(index_bits=4)
        faults_before = machine.logger.stats.pmt_fault_count
        n = 40
        for i in range(n):
            proc.compute(100)
            page = (i % 2) * PAGE_SIZE
            proc.write(va + page + 4 + 4 * i, i)
        machine.quiesce()
        faults = machine.logger.stats.pmt_fault_count - faults_before
        # Every write after the first alternation faults.
        assert faults >= n - 2
        # But the log is still complete and ordered.
        assert [r.value for r in log.records()][2:] == list(range(n))
        set_current_machine(None)

    def test_wide_pmt_has_no_conflicts(self):
        machine, proc, va, log = build_conflicting_setup(index_bits=4)
        set_current_machine(None)
        # Same physical layout, full-width PMT: indexes differ.
        machine2 = boot(
            MachineConfig(memory_bytes=512 * 1024 * 1024, pmt_index_bits=15)
        )
        proc2 = machine2.current_process
        seg = StdSegment(2 * PAGE_SIZE, machine=machine2)
        region = StdRegion(seg)
        region.log(LogSegment(machine=machine2))
        va2 = region.bind(proc2.address_space())
        proc2.write(va2, 0)
        proc2.write(va2 + PAGE_SIZE, 0)
        machine2.quiesce()
        before = machine2.logger.stats.pmt_fault_count
        for i in range(40):
            proc2.compute(100)
            proc2.write(va2 + (i % 2) * PAGE_SIZE + 4 + 4 * i, i)
        machine2.quiesce()
        assert machine2.logger.stats.pmt_fault_count == before
        set_current_machine(None)

    def test_thrash_costs_show_in_elapsed_time(self):
        """PMT thrash slows the run (logging faults stall the logger,
        eventually backing pressure onto the writer)."""
        machine, proc, va, log = build_conflicting_setup(index_bits=4)
        t0 = proc.now
        for i in range(200):
            proc.write(va + (i % 2) * PAGE_SIZE + 8 + 4 * (i // 2), i)
        machine.sync(proc.cpu)
        thrashed = proc.now - t0
        set_current_machine(None)

        # Reference: the same writes on a machine whose PMT holds both
        # pages without conflict.
        machine2 = boot(MachineConfig(memory_bytes=64 * 1024 * 1024))
        proc2 = machine2.current_process
        seg = StdSegment(2 * PAGE_SIZE, machine=machine2)
        region = StdRegion(seg)
        region.log(LogSegment(machine=machine2))
        va2 = region.bind(proc2.address_space())
        proc2.write(va2, 0)
        proc2.write(va2 + PAGE_SIZE, 0)
        machine2.quiesce()
        t0 = proc2.now
        for i in range(200):
            proc2.write(va2 + (i % 2) * PAGE_SIZE + 8 + 4 * (i // 2), i)
        machine2.sync(proc2.cpu)
        clean = proc2.now - t0
        set_current_machine(None)
        assert thrashed > 2 * clean
