"""Tests: heap allocation over regions and placement auditing (§2.7)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.heap import HeapAllocator, HeapError, audit_placement
from repro.core.log_segment import LogSegment
from repro.core.region import StdRegion
from repro.core.segment import StdSegment
from repro.hw.params import LINE_SIZE, PAGE_SIZE


def make_heap(machine, proc, size=4 * PAGE_SIZE, logged=False):
    seg = StdSegment(size, machine=machine)
    region = StdRegion(seg)
    if logged:
        region.log(LogSegment(machine=machine))
    region.bind(proc.address_space())
    return HeapAllocator(proc, region)


class TestHeapAllocator:
    def test_allocations_distinct_and_aligned(self, machine, proc):
        heap = make_heap(machine, proc)
        a = heap.allocate(10)
        b = heap.allocate(100)
        assert a != b
        assert a % LINE_SIZE == 0 and b % LINE_SIZE == 0

    def test_free_and_reuse(self, machine, proc):
        heap = make_heap(machine, proc)
        a = heap.allocate(64)
        heap.free(a)
        b = heap.allocate(64)
        assert b == a  # first fit reuses the hole

    def test_double_free_rejected(self, machine, proc):
        heap = make_heap(machine, proc)
        a = heap.allocate(16)
        heap.free(a)
        with pytest.raises(HeapError):
            heap.free(a)

    def test_free_unallocated_rejected(self, machine, proc):
        heap = make_heap(machine, proc)
        heap.allocate(16)
        with pytest.raises(HeapError):
            heap.free(heap.region.base_va + 64)

    def test_exhaustion(self, machine, proc):
        heap = make_heap(machine, proc, size=PAGE_SIZE)
        heap.allocate(PAGE_SIZE)
        with pytest.raises(HeapError):
            heap.allocate(16)

    def test_coalescing_allows_large_realloc(self, machine, proc):
        heap = make_heap(machine, proc, size=PAGE_SIZE)
        blocks = [heap.allocate(PAGE_SIZE // 4) for _ in range(4)]
        for va in blocks:
            heap.free(va)
        assert heap.allocate(PAGE_SIZE) == blocks[0]

    def test_charges_cycles(self, machine, proc):
        heap = make_heap(machine, proc)
        t0 = proc.now
        va = heap.allocate(32)
        heap.free(va)
        assert proc.now > t0

    def test_contains(self, machine, proc):
        heap = make_heap(machine, proc)
        va = heap.allocate(32)
        assert heap.contains(va)
        assert heap.contains(va + 31)
        assert not heap.contains(va + 64)
        assert not heap.contains(0x7777_0000)

    def test_unbound_region_rejected(self, machine, proc):
        region = StdRegion(StdSegment(PAGE_SIZE, machine=machine))
        with pytest.raises(HeapError):
            HeapAllocator(proc, region)

    @settings(max_examples=30, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(1, 300)), min_size=1, max_size=40
        )
    )
    def test_property_no_overlap_and_conservation(self, ops):
        """Live allocations never overlap; free+allocated == heap size."""
        from repro.core.context import boot, set_current_machine
        from conftest import TEST_CONFIG

        machine = boot(TEST_CONFIG)
        try:
            proc = machine.current_process
            heap = make_heap(machine, proc, size=4 * PAGE_SIZE)
            live = []
            for do_alloc, size in ops:
                if do_alloc or not live:
                    try:
                        live.append(heap.allocate(size))
                    except HeapError:
                        pass  # exhaustion is legal
                else:
                    heap.free(live.pop(0))
            allocs = heap.allocations()
            for (va1, s1), (va2, s2) in zip(allocs, allocs[1:]):
                assert va1 + s1 <= va2
            assert heap.free_bytes + heap.bytes_allocated == heap.region.size
        finally:
            set_current_machine(None)


class TestObjectPlacement:
    def test_objects_on_logged_heap_are_logged(self, machine, proc):
        """Same 'type', different region: only one instance logs (2.7)."""
        logged = make_heap(machine, proc, logged=True)
        plain = make_heap(machine, proc, logged=False)
        assert logged.is_logged and not plain.is_logged

        hot = logged.allocate(32)
        cold = plain.allocate(32)
        proc.write(hot, 1)
        proc.write(cold, 2)
        machine.quiesce()
        log = logged.region.log_segment
        assert log.record_count == 1
        assert next(iter(log.records())).value == 1

    def test_audit_detects_misplacement(self, machine, proc):
        logged = make_heap(machine, proc, logged=True)
        plain = make_heap(machine, proc, logged=False)
        objects = {
            "account_table": logged.allocate(128),
            "scratch_buffer": plain.allocate(128),
            "journal_root": plain.allocate(64),  # should have been logged!
            "stats_cache": logged.allocate(64),  # wastes log bandwidth
        }
        misplaced = audit_placement(
            objects, logged, plain, must_log={"account_table", "journal_root"}
        )
        assert sorted(misplaced) == ["journal_root", "stats_cache"]

    def test_audit_rejects_foreign_object(self, machine, proc):
        from repro.errors import SegmentError

        logged = make_heap(machine, proc, logged=True)
        plain = make_heap(machine, proc, logged=False)
        with pytest.raises(SegmentError):
            audit_placement({"ghost": 0x1234}, logged, plain, set())

    def test_field_fracturing(self, machine, proc):
        """Section 2.7: split an object so only the loggable fields live
        in the logged region."""
        logged = make_heap(machine, proc, logged=True)
        plain = make_heap(machine, proc, logged=False)
        # An "object" with 2 persistent words and 14 scratch words.
        persistent = logged.allocate(8)
        scratch = plain.allocate(56)
        for i in range(100):
            proc.write(scratch + 4 * (i % 14), i)  # rapid temporaries
        proc.write(persistent, 42)
        proc.write(persistent + 4, 43)
        machine.quiesce()
        # Only the 2 persistent writes hit the log.
        assert logged.region.log_segment.record_count == 2
