"""Differential property tests across log backends.

Backend choice changes *when* things happen — never *what* ends up
durable.  The same seeded workload driven through every backend must
recover byte-identical segment images and identical committed-tid
sets; two backends differing only in latency parameters must agree on
the cycle count bit-for-bit.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import BACKENDS, make_backend
from repro.backends.ramdisk import (
    DEFAULT_OP_OVERHEAD_CYCLES as RAM_OP_CYCLES,
    DEFAULT_PER_BLOCK_CYCLES as RAM_BLOCK_CYCLES,
    RamDisk,
)
from repro.backends.tmpfs import dram_tmpfs, nvram_tmpfs
from repro.faults.checker import recover
from repro.faults.plan import FaultPlan
from repro.faults.sweep import DEFAULT_SCRIPT, SWEEP_DEVICE_BYTES, run_script
from repro.rvm.rlvm import RLVM
from repro.rvm.rvm import RVM

#: Every sweepable device configuration: four devices, sync and group.
ALL_DEVICE_CONFIGS = [
    (name, gc) for name in sorted(BACKENDS) for gc in (False, True)
]


def _run(backend_cls, script, seed, device_factory):
    result = run_script(
        backend_cls, script, FaultPlan(seed=seed), device_factory=device_factory
    )
    assert result.crash is None
    return result


def _recovered(result):
    return recover(result.end_snapshot)


class TestBackendsAgreeOnDurableState:
    @pytest.mark.parametrize("backend_cls", [RVM, RLVM], ids=["rvm", "rlvm"])
    def test_fixed_script_recovers_identically_everywhere(self, backend_cls):
        reference = None
        for name, gc in ALL_DEVICE_CONFIGS:
            result = _run(
                backend_cls,
                DEFAULT_SCRIPT,
                seed=1995,
                device_factory=lambda n=name, g=gc: make_backend(
                    n, SWEEP_DEVICE_BYTES, group_commit=g
                ),
            )
            rec = _recovered(result)
            got = (rec.images, rec.committed_tids)
            if reference is None:
                reference = got
            else:
                assert got == reference, f"{name} group_commit={gc} diverged"

    def test_latency_twins_agree_on_cycles_bit_for_bit(self):
        """Backends that differ only in latency *parameters* (not model
        structure) must produce bit-identical cycle totals."""
        for backend_cls in (RVM, RLVM):
            ram = _run(
                backend_cls,
                DEFAULT_SCRIPT,
                seed=1995,
                device_factory=lambda: RamDisk(SWEEP_DEVICE_BYTES),
            )
            tmpfs_as_ram = _run(
                backend_cls,
                DEFAULT_SCRIPT,
                seed=1995,
                device_factory=lambda: dram_tmpfs(
                    SWEEP_DEVICE_BYTES,
                    op_overhead_cycles=RAM_OP_CYCLES,
                    per_block_cycles=RAM_BLOCK_CYCLES,
                ),
            )
            assert ram.final_cycle == tmpfs_as_ram.final_cycle
            assert _recovered(ram).images == _recovered(tmpfs_as_ram).images

    def test_nvram_with_zero_drain_is_dram(self):
        dram = _run(
            RVM,
            DEFAULT_SCRIPT,
            seed=1995,
            device_factory=lambda: dram_tmpfs(SWEEP_DEVICE_BYTES),
        )
        nvram_no_drain = _run(
            RVM,
            DEFAULT_SCRIPT,
            seed=1995,
            device_factory=lambda: nvram_tmpfs(
                SWEEP_DEVICE_BYTES, write_drain_per_block_cycles=0
            ),
        )
        assert dram.final_cycle == nvram_no_drain.final_cycle

    def test_slower_media_never_runs_faster(self):
        """Sanity on the latency ordering end-to-end: the rotating disk
        run takes strictly more cycles than the RAM-disk run."""
        by_device = {
            name: _run(
                RVM,
                DEFAULT_SCRIPT,
                seed=1995,
                device_factory=lambda n=name: make_backend(n, SWEEP_DEVICE_BYTES),
            ).final_cycle
            for name in BACKENDS
        }
        assert by_device["ram"] < by_device["dram_tmpfs"]
        assert by_device["dram_tmpfs"] < by_device["nvram_tmpfs"]
        assert by_device["nvram_tmpfs"] < by_device["disk"]


# The randomized workload mirrors the crash sweep's script shape.
_writes = st.lists(
    st.tuples(st.integers(0, 63), st.integers(0, 2**32 - 1)),
    min_size=1,
    max_size=3,
).map(tuple)
_txn = st.tuples(
    st.just("txn"), st.sampled_from(["commit", "abort", "noflush"]), _writes
)
_op = st.one_of(_txn, st.just(("flush",)), st.just(("truncate",)))
_script = st.lists(_op, min_size=1, max_size=5).map(tuple)


class TestRandomizedDifferential:
    @settings(max_examples=8, deadline=None)
    @given(
        script=_script,
        backend=st.sampled_from(["rvm", "rlvm"]),
        seed=st.integers(0, 2**16),
    )
    def test_property_every_backend_recovers_the_same_bytes(
        self, script, backend, seed
    ):
        backend_cls = {"rvm": RVM, "rlvm": RLVM}[backend]
        reference = None
        for name, gc in ALL_DEVICE_CONFIGS:
            result = _run(
                backend_cls,
                script,
                seed,
                device_factory=lambda n=name, g=gc: make_backend(
                    n, SWEEP_DEVICE_BYTES, group_commit=g
                ),
            )
            rec = _recovered(result)
            got = (rec.images, rec.committed_tids, rec.valid_log_bytes)
            if reference is None:
                reference = got
            else:
                assert got == reference, f"{name} group_commit={gc} diverged"
