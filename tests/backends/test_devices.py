"""Unit tests: the pluggable log-device backends.

Every backend shares the :class:`LogDevice` protocol; these tests pin
the per-backend latency models, the group-commit buffer's coalescing
and durability semantics, and the factory.
"""

import pytest

from repro.backends import (
    BACKENDS,
    BLOCK_BYTES,
    GroupCommit,
    RamDisk,
    RotatingDisk,
    TmpfsDisk,
    dram_tmpfs,
    make_backend,
    nvram_tmpfs,
)
from repro.errors import AddressError, ConfigError


def _cost(proc, op):
    t0 = proc.now
    op()
    return proc.now - t0


class TestProtocolAcrossBackends:
    """The shared protocol behaves identically on every device."""

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_write_read_roundtrip(self, machine, proc, name):
        disk = make_backend(name, 4096)
        disk.write(proc.cpu, 128, b"durable")
        assert disk.read(proc.cpu, 128, 7) == b"durable"
        assert disk.peek(128, 7) == b"durable"

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_peek_poke_untimed(self, machine, proc, name):
        disk = make_backend(name, 4096)
        t0 = proc.now
        disk.poke(0, b"abc")
        assert disk.peek(0, 3) == b"abc"
        assert proc.now == t0

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_flush_and_barrier_counted_and_free(self, machine, proc, name):
        """Synchronous devices: flush/barrier are ordering points, not
        I/O — zero cycles, so the paper's Table 3 calibration holds."""
        disk = make_backend(name, 4096)
        assert _cost(proc, lambda: disk.flush(proc.cpu)) == 0
        assert _cost(proc, lambda: disk.barrier(proc.cpu)) == 0
        assert disk.flush_ops == 2  # barrier flushes first
        assert disk.barrier_ops == 1

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_out_of_range_rejected(self, machine, proc, name):
        disk = make_backend(name, 128)
        with pytest.raises(AddressError):
            disk.write(proc.cpu, 120, b"too long!")
        with pytest.raises(AddressError):
            disk.read(proc.cpu, -1, 4)

    def test_zero_size_rejected(self):
        with pytest.raises(AddressError):
            RamDisk(0)


class TestLatencyModels:
    def test_backends_are_ordered_by_write_cost(self, machine, proc):
        """One 256-byte sequential write: ram < dram_tmpfs <
        nvram_tmpfs < disk — the spread the benchmarks measure."""
        costs = {}
        for name in BACKENDS:
            disk = make_backend(name, 4096)
            costs[name] = _cost(proc, lambda d=disk: d.write(proc.cpu, 0, b"x" * 256))
        assert (
            costs["ram"]
            < costs["dram_tmpfs"]
            < costs["nvram_tmpfs"]
            < costs["disk"]
        )

    def test_nvram_drain_applies_to_writes_only(self, machine, proc):
        dram = dram_tmpfs(4096)
        nvram = nvram_tmpfs(4096)
        data = b"x" * 512
        assert _cost(proc, lambda: nvram.write(proc.cpu, 0, data)) > _cost(
            proc, lambda: dram.write(proc.cpu, 0, data)
        )
        assert _cost(proc, lambda: nvram.read(proc.cpu, 0, 512)) == _cost(
            proc, lambda: dram.read(proc.cpu, 0, 512)
        )

    def test_rotating_disk_sequential_vs_seek(self, machine, proc):
        disk = RotatingDisk(1 << 20)
        data = b"x" * BLOCK_BYTES
        first = _cost(proc, lambda: disk.write(proc.cpu, 0, data))
        sequential = _cost(proc, lambda: disk.write(proc.cpu, BLOCK_BYTES, data))
        assert first == sequential  # the head starts at offset 0
        seeking = _cost(proc, lambda: disk.write(proc.cpu, 64 * 1024, data))
        assert seeking - sequential == disk.seek_cycles
        assert disk.seeks == 1

    def test_rotating_disk_head_tracks_reads_too(self, machine, proc):
        disk = RotatingDisk(1 << 20)
        disk.write(proc.cpu, 0, b"x" * 256)
        assert disk.seeks == 0  # head began at offset 0
        disk.read(proc.cpu, 256, 256)  # sequential after the write
        assert disk.seeks == 0
        disk.read(proc.cpu, 0, 256)  # back to the start: a seek
        assert disk.seeks == 1

    def test_larger_transfers_cost_more_everywhere(self, machine, proc):
        for name in BACKENDS:
            disk = make_backend(name, 1 << 20)
            small = _cost(proc, lambda: disk.write(proc.cpu, 0, b"x" * 256))
            # Sequential continuation so the rotating disk does not seek.
            large = _cost(proc, lambda: disk.write(proc.cpu, 256, b"x" * 4096))
            assert large > small, name


class TestGroupCommit:
    def test_buffered_append_is_cheap_and_invisible(self, machine, proc):
        gc = make_backend("disk", 4096, group_commit=True)
        cost = _cost(proc, lambda: gc.write(proc.cpu, 0, b"hello"))
        assert cost < gc.inner.op_overhead_cycles
        assert gc.inner.write_ops == 0
        # Unflushed bytes are not durable: peek sees the medium only.
        assert gc.peek(0, 5) == b"\x00" * 5
        assert gc.durable_bytes()[:5] == b"\x00" * 5
        assert gc.pending_bytes == 5

    def test_flush_is_the_durability_point(self, machine, proc):
        gc = make_backend("ram", 4096, group_commit=True)
        gc.write(proc.cpu, 0, b"hello")
        gc.flush(proc.cpu)
        assert gc.peek(0, 5) == b"hello"
        assert gc.pending_bytes == 0
        assert gc.inner.write_ops == 1

    def test_adjacent_appends_coalesce_into_one_run(self, machine, proc):
        gc = make_backend("disk", 4096, group_commit=True)
        for i in range(8):
            gc.write(proc.cpu, 16 * i, b"a" * 16)
        assert gc.pending_runs == 1
        gc.flush(proc.cpu)
        assert gc.inner.write_ops == 1  # one positioned write, one seek max
        assert gc.peek(0, 128) == b"a" * 128

    def test_overlapping_appends_newer_bytes_win(self, machine, proc):
        gc = make_backend("ram", 4096, group_commit=True)
        gc.write(proc.cpu, 0, b"AAAAAAAA")
        gc.write(proc.cpu, 4, b"BBBBBBBB")
        gc.write(proc.cpu, 2, b"CC")
        assert gc.pending_runs == 1
        gc.flush(proc.cpu)
        assert gc.peek(0, 12) == b"AACCBBBBBBBB"

    def test_disjoint_runs_stay_disjoint_and_sorted(self, machine, proc):
        gc = make_backend("ram", 4096, group_commit=True)
        gc.write(proc.cpu, 1024, b"late")
        gc.write(proc.cpu, 0, b"early")
        assert gc.pending_runs == 2
        gc.flush(proc.cpu)
        assert gc.peek(0, 5) == b"early"
        assert gc.peek(1024, 4) == b"late"
        assert gc.inner.write_ops == 2

    def test_timed_read_flushes_first(self, machine, proc):
        gc = make_backend("ram", 4096, group_commit=True)
        gc.write(proc.cpu, 0, b"fresh")
        assert gc.read(proc.cpu, 0, 5) == b"fresh"
        assert gc.pending_bytes == 0  # the read forced the flush

    def test_lose_volatile_drops_the_batch(self, machine, proc):
        gc = make_backend("ram", 4096, group_commit=True)
        gc.write(proc.cpu, 0, b"gone")
        gc.lose_volatile()
        assert gc.pending_bytes == 0
        gc.flush(proc.cpu)
        assert gc.peek(0, 4) == b"\x00" * 4

    def test_poke_writes_through(self, machine, proc):
        """Torn-write partials must land on the medium, not the buffer."""
        gc = make_backend("ram", 4096, group_commit=True)
        gc.poke(0, b"torn")
        assert gc.inner.peek(0, 4) == b"torn"
        assert gc.pending_bytes == 0

    def test_auto_flush_bounds_the_pending_window(self, machine, proc):
        gc = GroupCommit(RamDisk(1 << 20), max_pending_bytes=1024)
        for i in range(5):
            gc.write(proc.cpu, 512 * i, b"x" * 512)
        assert gc.pending_bytes <= 1024
        assert gc.inner.write_ops > 0

    def test_cannot_stack_group_commit(self):
        with pytest.raises(ConfigError):
            GroupCommit(GroupCommit(RamDisk(4096)))

    def test_group_commit_beats_sync_on_slow_media(self, machine, proc):
        """The point of the layer: N appends + one flush is cheaper
        than N synchronous writes on the rotating disk."""
        appends = [(64 * i, b"x" * 64) for i in range(16)]
        sync = RotatingDisk(1 << 20)
        sync_cost = _cost(
            proc,
            lambda: [sync.write(proc.cpu, o, d) for o, d in appends],
        )
        gc = make_backend("disk", 1 << 20, group_commit=True)

        def batched():
            for o, d in appends:
                gc.write(proc.cpu, o, d)
            gc.flush(proc.cpu)

        group_cost = _cost(proc, batched)
        assert group_cost * 2 <= sync_cost


class TestFactory:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            make_backend("floppy", 4096)

    def test_names_and_sizes(self):
        for name in BACKENDS:
            disk = make_backend(name, 4096)
            assert disk.name == name
            assert disk.size == 4096
        gc = make_backend("disk", 4096, group_commit=True)
        assert gc.name == "disk+group"
        assert gc.size == 4096

    def test_latency_params_pass_through(self, machine, proc):
        disk = make_backend("ram", 4096, op_overhead_cycles=1, per_block_cycles=1)
        assert _cost(proc, lambda: disk.write(proc.cpu, 0, b"x")) == 2

    def test_legacy_ramdisk_import_is_the_backend(self):
        from repro.rvm.ramdisk import RamDisk as LegacyRamDisk

        assert LegacyRamDisk is RamDisk
