"""Tests: divergence detection between recorded and replayed runs."""

import random

import pytest

from repro.core.context import boot, set_current_machine
from repro.core.log_segment import LogSegment
from repro.core.region import StdRegion
from repro.core.segment import StdSegment
from repro.errors import LoggingError
from repro.hw.params import MachineConfig
from repro.hw.records import LogRecord
from repro.obs.trace import validate_trace
from repro.replay import find_divergence, record_reference, replay_against

CONFIG = MachineConfig(memory_bytes=32 * 1024 * 1024)


def write_workload(seed, nwrites=40, perturb_at=None, extra=0):
    """Deterministic seeded writes; optionally perturb one value or
    append ``extra`` additional writes."""

    def run():
        machine = boot(CONFIG)
        try:
            proc = machine.current_process
            region = StdRegion(StdSegment(4 * 4096, machine=machine))
            log = LogSegment(machine=machine)
            region.log(log)
            va = region.bind(proc.address_space())
            rng = random.Random(seed)
            for i in range(nwrites + extra):
                value = rng.randrange(2**32)
                if i == perturb_at:
                    value ^= 0x80
                proc.write(va + 4 * rng.randrange(region.size // 4), value)
            machine.quiesce()
            return {"machine": machine, "log": log}
        finally:
            set_current_machine(None)

    return run


class TestRecordReference:
    def test_identical_rerun_reports_no_divergence(self):
        reference = record_reference(write_workload(seed=1), trace=False)
        assert len(reference) == 40
        assert replay_against(reference, write_workload(seed=1)) is None

    def test_reference_carries_a_valid_obs_trace(self):
        reference = record_reference(write_workload(seed=2))
        assert reference.trace is not None
        validate_trace(reference.trace)
        # The per-record "logger" category narrates the compared stream.
        assert any(
            ev.get("cat") == "logger" for ev in reference.trace["traceEvents"]
        )

    def test_traced_reference_matches_untraced_replay(self):
        # The obs guarantee the detector leans on: tracing must not
        # perturb the cycle domain, so a traced reference replays
        # identically untraced (timestamps included).
        reference = record_reference(write_workload(seed=3), trace=True)
        assert replay_against(reference, write_workload(seed=3), trace=False) is None

    def test_canned_workload_by_name(self):
        reference = record_reference("copy", trace=False)
        assert reference.workload == "copy"
        assert replay_against(reference) is None

    def test_workload_without_log_rejected(self):
        def no_log():
            machine = boot(CONFIG)
            set_current_machine(None)
            return {"machine": machine, "log": None}

        with pytest.raises(LoggingError, match="no hardware log"):
            record_reference(no_log, trace=False)


class TestPerturbationDetection:
    def test_perturbed_value_reports_first_divergent_cycle(self):
        reference = record_reference(write_workload(seed=4), trace=False)
        divergence = replay_against(
            reference, write_workload(seed=4, perturb_at=17)
        )
        assert divergence is not None
        assert divergence.index == 17
        assert divergence.expected.value != divergence.actual.value
        assert "value" in divergence.reason
        # The reported cycle is the diverging record's timestamp window.
        assert (
            divergence.cycle
            == reference.records[17].timestamp * reference.timestamp_divider
        )

    def test_short_replay_reported_at_truncation_point(self):
        reference = record_reference(write_workload(seed=5), trace=False)
        divergence = replay_against(
            reference, write_workload(seed=5, nwrites=30)
        )
        assert divergence is not None
        assert divergence.index == 30
        assert divergence.actual is None
        assert divergence.reason == "replay stopped short"

    def test_extra_writes_reported_past_reference_end(self):
        reference = record_reference(write_workload(seed=6), trace=False)
        divergence = replay_against(
            reference, write_workload(seed=6, extra=5)
        )
        assert divergence is not None
        assert divergence.index == 40
        assert divergence.expected is None
        assert divergence.reason == "replay logged extra records"


class TestFindDivergence:
    def test_pure_stream_comparison(self):
        a = [LogRecord(addr=0, value=1, size=4, timestamp=10)]
        b = [LogRecord(addr=0, value=2, size=4, timestamp=10)]
        divergence = find_divergence(a, b, timestamp_divider=4)
        assert divergence.index == 0
        assert divergence.cycle == 40
        assert find_divergence(a, a) is None
