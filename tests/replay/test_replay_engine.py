"""Tests: checkpointed replay engine — golden seeks, cycle indexing."""

import random

import pytest

from conftest import make_logged_region
from repro.errors import LoggingError
from repro.hw.params import PAGE_SIZE, MachineConfig
from repro.replay import Checkpoint, CheckpointStore, ReplayEngine


def drive_random_writes(proc, va, region_size, seed, count):
    rng = random.Random(seed)
    for _ in range(count):
        size = rng.choice((1, 2, 4))
        offset = rng.randrange(region_size // 4) * 4
        proc.write(va + offset, rng.randrange(2 ** (8 * size)), size)


class TestGoldenSeeks:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("interval", [1, 7, 64])
    def test_every_position_matches_full_replay(self, machine, proc, seed, interval):
        # The acceptance property: checkpointed seek(n) is bit-identical
        # to the seed's full replay for EVERY position in the history.
        region, _log, va = make_logged_region(machine)
        engine = ReplayEngine(region, checkpoint_interval=interval)
        drive_random_writes(proc, va, region.size, seed, 120)
        total = len(engine)
        assert total == 120
        for n in range(total + 1):
            assert engine.state_at(n) == engine.full_replay_state_at(n), (
                seed,
                interval,
                n,
            )

    def test_final_position_matches_live_memory(self, machine, proc):
        region, _log, va = make_logged_region(machine)
        engine = ReplayEngine(region)
        drive_random_writes(proc, va, region.size, 3, 200)
        machine.quiesce()
        assert engine.state_at(len(engine)) == bytes(region.segment.snapshot())

    def test_near_tip_seek_is_o_distance(self, machine, proc):
        region, _log, va = make_logged_region(machine)
        engine = ReplayEngine(region, checkpoint_interval=16)
        drive_random_writes(proc, va, region.size, 4, 400)
        total = len(engine)
        engine.state_at(total)  # builds checkpoints up to the tip
        before = engine.stats.records_replayed
        engine.state_at(total - 1)
        # One near-tip seek replays at most one checkpoint interval of
        # records, never the 400-write history.
        assert engine.stats.records_replayed - before < 16
        assert engine.stats.checkpoints_captured == 400 // 16

    def test_writes_after_a_seek_extend_history(self, machine, proc):
        region, _log, va = make_logged_region(machine)
        engine = ReplayEngine(region, checkpoint_interval=8)
        drive_random_writes(proc, va, region.size, 5, 30)
        engine.state_at(10)
        drive_random_writes(proc, va, region.size, 6, 30)
        assert len(engine) == 60
        for n in (0, 17, 42, 60):
            assert engine.state_at(n) == engine.full_replay_state_at(n)


class TestCycleIndexing:
    def test_cycle_maps_to_position(self, machine, proc):
        region, _log, va = make_logged_region(machine)
        engine = ReplayEngine(region)
        proc.write(va, 1)
        machine.quiesce()
        mid_cycle = machine.time()
        proc.compute(10_000)
        proc.write(va + 4, 2)
        machine.quiesce()
        assert engine.position_of_cycle(mid_cycle) == 1
        assert engine.position_of_cycle(machine.time()) == 2
        assert engine.position_of_cycle(0) == 0

    def test_state_at_cycle(self, machine, proc):
        region, _log, va = make_logged_region(machine)
        engine = ReplayEngine(region)
        proc.write(va, 0xAA)
        machine.quiesce()
        then = machine.time()
        proc.compute(10_000)
        proc.write(va, 0xBB)
        state = engine.state_at_cycle(then)
        assert int.from_bytes(state[0:4], "little") == 0xAA


class TestLogShapeChanges:
    def test_truncation_rebuilds_history(self, machine, proc):
        region, log, va = make_logged_region(machine)
        engine = ReplayEngine(region, checkpoint_interval=4)
        drive_random_writes(proc, va, region.size, 7, 20)
        engine.state_at(len(engine))
        log.truncate(10 * log.record_size)
        assert len(engine) == 10
        assert engine.stats.cache_rebuilds == 1
        assert engine.state_at(10) == engine.full_replay_state_at(10)

    def test_rewind_rebuilds_history(self, machine, proc):
        region, log, va = make_logged_region(machine)
        engine = ReplayEngine(region, checkpoint_interval=4)
        drive_random_writes(proc, va, region.size, 8, 20)
        engine.state_at(len(engine))
        log.rewind(5 * log.record_size)
        assert len(engine) == 5
        assert engine.state_at(5) == engine.full_replay_state_at(5)


class TestErrorsAndCosts:
    def test_out_of_range_position_rejected(self, machine, proc):
        region, _log, va = make_logged_region(machine)
        engine = ReplayEngine(region)
        proc.write(va, 1)
        with pytest.raises(LoggingError, match="outside history"):
            engine.state_at(2)
        with pytest.raises(LoggingError, match="outside history"):
            engine.full_replay_state_at(-1)

    def test_bad_interval_rejected(self, machine, proc):
        region, _log, _va = make_logged_region(machine)
        with pytest.raises(LoggingError):
            ReplayEngine(region, checkpoint_interval=0)

    def test_attaches_log_when_region_unlogged(self, machine, proc):
        from repro.core.region import StdRegion
        from repro.core.segment import StdSegment

        region = StdRegion(StdSegment(2 * PAGE_SIZE, machine=machine))
        va = region.bind(proc.address_space())
        engine = ReplayEngine(region)
        assert region.log_segment is engine.log
        proc.write(va, 9)
        assert len(engine) == 1

    def test_checkpoints_charge_deferred_copy_cycles(self, machine, proc):
        from repro.core.deferred_copy import ResetStats, checkpoint_cost_cycles

        region, _log, va = make_logged_region(machine)
        engine = ReplayEngine(region, checkpoint_interval=4)
        for i in range(4):
            proc.write(va + 4 * i, i)  # one dirty page, 1..4 dirty lines
        engine.state_at(4)
        (base, ckpt) = engine.checkpoints
        assert base == Checkpoint(0, 0, 0, 0)
        assert ckpt.position == 4
        assert ckpt.dirty_pages == 1
        expected = checkpoint_cost_cycles(
            machine.config,
            ResetStats(
                pages_scanned=region.size // PAGE_SIZE,
                dirty_pages=1,
                dirty_lines=ckpt.dirty_lines,
            ),
        )
        assert ckpt.cost_cycles == expected
        assert engine.checkpoint_cost_cycles == expected


class TestCheckpointStore:
    CONFIG = MachineConfig(memory_bytes=32 * 1024 * 1024)

    def test_materialize_overlays_newest_version(self):
        base = bytes(2 * PAGE_SIZE)
        store = CheckpointStore(base, self.CONFIG)
        s1 = bytearray(base)
        s1[0] = 0x11
        store.capture(4, s1, {0}, 1)
        s2 = bytearray(s1)
        s2[PAGE_SIZE] = 0x22
        store.capture(8, s2, {1}, 1)
        assert store.materialize(0) == bytearray(base)
        assert bytes(store.materialize(4)) == bytes(s1)
        assert bytes(store.materialize(8)) == bytes(s2)
        assert store.nearest(7) == 4
        assert store.nearest(100) == 8

    def test_capture_must_move_forward(self):
        store = CheckpointStore(bytes(PAGE_SIZE), self.CONFIG)
        store.capture(4, bytearray(PAGE_SIZE), set(), 0)
        with pytest.raises(LoggingError):
            store.capture(4, bytearray(PAGE_SIZE), set(), 0)

    def test_materialize_requires_exact_position(self):
        store = CheckpointStore(bytes(PAGE_SIZE), self.CONFIG)
        store.capture(4, bytearray(PAGE_SIZE), set(), 0)
        with pytest.raises(LoggingError, match="not a checkpoint position"):
            store.materialize(3)

    def test_base_must_be_whole_pages(self):
        with pytest.raises(LoggingError):
            CheckpointStore(b"x" * 100, self.CONFIG)
