"""Tests: the ``python -m repro replay`` CLI smokes."""

import pytest

from repro.replay.cli import main


class TestReplayCli:
    def test_seek_smoke(self, capsys):
        assert main(["seek", "--writes", "80", "--interval", "16"]) == 0
        out = capsys.readouterr().out
        assert "bit-identical" in out

    def test_diverge_smoke(self, capsys):
        assert main(["diverge", "--workload", "copy"]) == 0
        out = capsys.readouterr().out
        assert "replayed" in out and "identically" in out

    def test_diverge_perturb_detects(self, capsys):
        assert main(["diverge", "--perturb", "--writes", "40"]) == 0
        out = capsys.readouterr().out
        assert "perturbation caught" in out
        assert "first divergence at write 20" in out

    def test_crash_smoke(self, capsys):
        assert main(["crash"]) == 0
        out = capsys.readouterr().out
        assert "byte-identical" in out

    def test_crash_unknown_site_fails(self, capsys):
        assert main(["crash", "--site", "rvm.commit.durable", "--nth", "999"]) == 1
        assert "never fired" in capsys.readouterr().err

    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
