"""Tests: replaying a FaultPlan to its CrashPoint and verifying it."""

import pytest

from repro.errors import LoggingError
from repro.faults.checker import CrashCheckFailure
from repro.faults.plan import CrashSpec, FaultPlan
from repro.faults.sweep import DEFAULT_SCRIPT, run_script
from repro.replay import replay_to_crash, verify_crash_replay


def crash_once(site="rvm.commit.durable", nth=1, mode="before", seed=0):
    from repro.rvm.rlvm import RLVM

    plan = FaultPlan(seed=seed, crash=CrashSpec(site, nth, mode))
    result = run_script(RLVM, DEFAULT_SCRIPT, plan)
    assert result.crash is not None
    return result.crash


class TestFaultPlanFromRepr:
    def test_round_trips_fresh_and_unfired(self):
        plan = FaultPlan(seed=7, crash=CrashSpec("wal.append", 2, "torn"))
        plan.fired = True
        plan.counts["wal.append"] = 5
        rebuilt = FaultPlan.from_repr(repr(plan))
        assert repr(rebuilt) == repr(plan)
        assert not rebuilt.fired
        assert not rebuilt.counts

    def test_rejects_garbage(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            FaultPlan.from_repr("__import__('os')")
        with pytest.raises(ConfigError):
            FaultPlan.from_repr("CrashSpec('wal.append')")


class TestReplayToCrash:
    def test_reproduces_durable_snapshot_exactly(self):
        original = crash_once()
        # Replay from the repr string alone — the CI-artifact workflow.
        replay = replay_to_crash(original.plan_repr)
        assert (replay.site, replay.seq) == (original.site, original.seq)
        verify_crash_replay(original, replay)
        assert replay.snapshot.disk_bytes == original.snapshot.disk_bytes
        assert replay.snapshot.images == original.snapshot.images

    def test_accepts_crashpoint_and_plan_objects(self):
        original = crash_once(site="ramdisk.write", nth=3, mode="torn")
        verify_crash_replay(original, replay_to_crash(original))
        fired_plan = FaultPlan.from_repr(original.plan_repr)
        replay_to_crash(fired_plan)  # plan object round-trips via repr

    @pytest.mark.parametrize(
        "site,mode",
        [
            ("rvm.commit.log", "before"),
            ("ramdisk.write", "after"),
            ("wal.append", "torn"),
        ],
    )
    def test_replay_is_exact_across_sites_and_modes(self, site, mode):
        original = crash_once(site=site, mode=mode)
        verify_crash_replay(original, replay_to_crash(original))

    def test_unreachable_plan_reported(self):
        plan = FaultPlan(seed=0, crash=CrashSpec("rvm.commit.durable", 999))
        with pytest.raises(LoggingError, match="did not fire"):
            replay_to_crash(plan)

    def test_verify_catches_a_different_crash(self):
        a = crash_once(site="rvm.commit.durable", nth=1)
        b = replay_to_crash(crash_once(site="rvm.commit.durable", nth=2))
        with pytest.raises(CrashCheckFailure):
            verify_crash_replay(a, b)

    def test_verify_catches_snapshot_drift(self):
        original = crash_once()
        replay = replay_to_crash(original)
        tampered = replay.crash.snapshot.__class__(
            disk_bytes=b"\x00" + replay.snapshot.disk_bytes[1:],
            wal_base=replay.snapshot.wal_base,
            wal_capacity=replay.snapshot.wal_capacity,
            images=replay.snapshot.images,
        )
        replay.crash.snapshot = tampered
        with pytest.raises(CrashCheckFailure, match="disk bytes"):
            verify_crash_replay(original, replay)
