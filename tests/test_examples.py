"""Smoke tests: every example script runs to completion.

The examples are part of the public deliverable; these tests keep them
green as the library evolves.  Each runs in-process (fresh machine
context) with stdout captured.
"""

import pathlib
import runpy

import pytest

from repro.core.context import set_current_machine

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    set_current_machine(None)
    try:
        runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    finally:
        set_current_machine(None)
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_all_examples_discovered():
    # Guard against the glob silently matching nothing.
    assert len(EXAMPLES) >= 9
