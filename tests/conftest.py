"""Shared fixtures for the LVM reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.context import boot, set_current_machine
from repro.core.log_segment import LogSegment
from repro.core.region import StdRegion
from repro.core.segment import StdSegment
from repro.hw.params import NEXT_GENERATION, MachineConfig

#: Small physical memory keeps tests fast; plenty for any single test.
TEST_CONFIG = MachineConfig(memory_bytes=32 * 1024 * 1024)
TEST_CONFIG_ONCHIP = NEXT_GENERATION.with_changes(memory_bytes=32 * 1024 * 1024)


def pytest_addoption(parser):
    parser.addoption(
        "--lvm-san",
        action="store_true",
        default=False,
        help="run every test under the log-race sanitizer and fail "
        "tests that perform unsynchronized cross-CPU logged writes",
    )


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    """A test that dies mid-injection must not poison its neighbours."""
    yield
    from repro.faults import plan as faultplan

    faultplan.uninstall()


@pytest.fixture(autouse=True)
def _no_leaked_observability():
    """Same for an Observability a test installed and failed to remove."""
    yield
    from repro.obs import core as obscore

    obscore.uninstall()


@pytest.fixture(autouse=True)
def _no_leaked_analytics_hub():
    """And for an AnalyticsHub left installed by a failing test."""
    yield
    from repro.analytics import stream as anstream

    anstream.uninstall()


@pytest.fixture(autouse=True)
def _lvm_san(request):
    """Under ``--lvm-san``, run the test inside a LogRaceDetector.

    Tests that install their own detector (tests/sanitize) opt out by
    uninstalling first; the teardown always clears any leaked detector,
    mirroring the fault-plan and observability fixtures above.
    """
    from repro.sanitize import race

    if not request.config.getoption("--lvm-san") or race.active() is not None:
        yield
        race.uninstall()
        return
    detector = race.LogRaceDetector()
    race.install(detector)
    try:
        yield
    finally:
        race.uninstall()
    assert not detector.races_seen, f"--lvm-san:\n{detector.summary()}"


@pytest.fixture
def machine():
    """A freshly booted prototype machine, installed as current."""
    m = boot(TEST_CONFIG)
    yield m
    set_current_machine(None)


@pytest.fixture
def onchip_machine():
    """A machine with the section 4.6 on-chip logger."""
    m = boot(TEST_CONFIG_ONCHIP)
    yield m
    set_current_machine(None)


@pytest.fixture
def proc(machine):
    """The initial process of the prototype machine."""
    return machine.current_process


def make_logged_region(machine, size=4 * 4096, log_kwargs=None, **log_extra):
    """Create and bind a logged region; returns (region, log, base_va)."""
    seg = StdSegment(size, machine=machine)
    region = StdRegion(seg)
    log = LogSegment(machine=machine, **(log_kwargs or {}), **log_extra)
    region.log(log)
    aspace = machine.current_process.address_space()
    va = region.bind(aspace)
    return region, log, va
