"""Unit tests: RAM disk and write-ahead log."""

import pytest

from repro.errors import AddressError, RecoveryError
from repro.rvm.ramdisk import RamDisk
from repro.rvm.wal import EntryKind, WriteAheadLog


class TestRamDisk:
    def test_write_read_roundtrip(self, machine, proc):
        disk = RamDisk(4096)
        disk.write(proc.cpu, 100, b"durable")
        assert disk.read(proc.cpu, 100, 7) == b"durable"

    def test_charges_cycles(self, machine, proc):
        disk = RamDisk(4096)
        t0 = proc.now
        disk.write(proc.cpu, 0, b"x" * 512)
        cost = proc.now - t0
        assert cost >= disk.op_overhead_cycles

    def test_larger_transfers_cost_more(self, machine, proc):
        disk = RamDisk(1 << 20)
        t0 = proc.now
        disk.write(proc.cpu, 0, b"x" * 256)
        small = proc.now - t0
        t0 = proc.now
        disk.write(proc.cpu, 0, b"x" * 4096)
        large = proc.now - t0
        assert large > small

    def test_out_of_range_rejected(self, machine, proc):
        disk = RamDisk(128)
        with pytest.raises(AddressError):
            disk.write(proc.cpu, 120, b"too long!")
        with pytest.raises(AddressError):
            disk.read(proc.cpu, -1, 4)

    def test_peek_poke_untimed(self, machine, proc):
        disk = RamDisk(128)
        t0 = proc.now
        disk.poke(0, b"abc")
        assert disk.peek(0, 3) == b"abc"
        assert proc.now == t0

    def test_op_counters(self, machine, proc):
        disk = RamDisk(4096)
        disk.write(proc.cpu, 0, b"ab")
        disk.read(proc.cpu, 0, 2)
        assert disk.write_ops == 1
        assert disk.read_ops == 1
        assert disk.bytes_written == 2


class TestWriteAheadLog:
    def test_append_and_scan(self, machine, proc):
        wal = WriteAheadLog(RamDisk(1 << 16))
        wal.append_begin(proc.cpu, 1)
        wal.append_write(proc.cpu, 1, 0, 64, b"\x01\x02")
        wal.append_commit(proc.cpu, 1)
        entries = list(wal.entries())
        assert [e.kind for e in entries] == [
            EntryKind.BEGIN,
            EntryKind.WRITE,
            EntryKind.COMMIT,
        ]
        assert entries[1].offset == 64
        assert entries[1].data == b"\x01\x02"

    def test_committed_filtering(self, machine, proc):
        wal = WriteAheadLog(RamDisk(1 << 16))
        wal.append_write(proc.cpu, 1, 0, 0, b"A")
        wal.append_commit(proc.cpu, 1)
        wal.append_write(proc.cpu, 2, 0, 4, b"B")  # never committed
        wal.append_write(proc.cpu, 3, 0, 8, b"C")
        wal.append_abort(proc.cpu, 3)
        committed = list(wal.committed_writes())
        assert [e.data for e in committed] == [b"A"]

    def test_group_append_is_one_disk_op(self, machine, proc):
        disk = RamDisk(1 << 16)
        wal = WriteAheadLog(disk)
        wal.append_writes(
            proc.cpu, 5, [(0, 0, b"xx"), (0, 8, b"yy"), (1, 0, b"zz")]
        )
        assert disk.write_ops == 1
        assert len(list(wal.entries())) == 3

    def test_empty_group_append_is_a_no_op(self, machine, proc):
        """Regression: an empty write group must not touch the disk,
        charge cycles, or bump any metric — exactly like an empty
        append_transactions call."""
        from repro.obs import core as obscore
        from repro.obs.core import Observability

        disk = RamDisk(1 << 16)
        wal = WriteAheadLog(disk)
        with obscore.installed(Observability()) as obs:
            before = obs.metrics.snapshot()
            t0 = proc.now
            wal.append_writes(proc.cpu, 5, [])
            assert proc.now == t0
            assert obs.metrics.snapshot() == before
        assert disk.write_ops == 0
        assert disk.bytes_written == 0
        assert wal.appends == 0
        assert wal.tail == 0
        assert list(wal.entries()) == []

    def test_reset(self, machine, proc):
        wal = WriteAheadLog(RamDisk(1 << 16))
        wal.append_commit(proc.cpu, 1)
        wal.reset()
        assert list(wal.entries()) == []

    def test_full_log_rejected(self, machine, proc):
        wal = WriteAheadLog(RamDisk(64), capacity=16)
        with pytest.raises(RecoveryError):
            for i in range(10):
                wal.append_commit(proc.cpu, i)
