"""Unit tests: the Coda-style RVM baseline library."""

import pytest

from repro.errors import TransactionError
from repro.rvm.rvm import RVM


@pytest.fixture
def rvm(machine, proc):
    return RVM(proc)


class TestRvmTransactions:
    def test_commit_persists(self, rvm, proc):
        va = rvm.map("db", 4096)
        txn = rvm.begin()
        txn.set_range(va, 4)
        txn.write(va, 42)
        txn.commit()
        assert proc.read(va) == 42
        assert rvm.committed_count == 1

    def test_abort_restores_old_values(self, rvm, proc):
        va = rvm.map("db", 4096)
        txn = rvm.begin()
        txn.set_range(va, 4)
        txn.write(va, 1)
        txn.commit()
        txn = rvm.begin()
        txn.set_range(va, 4)
        txn.write(va, 99)
        assert proc.read(va) == 99
        txn.abort()
        assert proc.read(va) == 1

    def test_write_without_set_range_rejected(self, rvm):
        va = rvm.map("db", 4096)
        txn = rvm.begin()
        with pytest.raises(TransactionError):
            txn.write(va, 1)

    def test_unsafe_write_not_undone(self, rvm, proc):
        """The missed-annotation hazard: abort silently misses it."""
        va = rvm.map("db", 4096)
        txn = rvm.begin()
        txn.set_range(va, 4)
        txn.write(va, 1)
        txn.unsafe_write(va + 8, 77)  # forgot set_range
        txn.abort()
        assert proc.read(va) == 0  # properly undone
        assert proc.read(va + 8) == 77  # corruption survives

    def test_set_range_cost_is_table3(self, rvm, proc):
        """Table 3: a single recoverable write costs 3,515 cycles."""
        va = rvm.map("db", 4096)
        proc.read(va)  # fault the page in first
        txn = rvm.begin()
        t0 = proc.now
        txn.set_range(va, 4)
        txn.write(va, 42)
        assert proc.now - t0 == 3515
        txn.commit()

    def test_one_txn_at_a_time(self, rvm):
        rvm.map("db", 4096)
        rvm.begin()
        with pytest.raises(TransactionError):
            rvm.begin()

    def test_finished_txn_unusable(self, rvm):
        va = rvm.map("db", 4096)
        txn = rvm.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.set_range(va, 4)

    def test_duplicate_map_rejected(self, rvm):
        rvm.map("db", 4096)
        with pytest.raises(TransactionError):
            rvm.map("db", 4096)

    def test_write_outside_recoverable_memory_rejected(self, rvm):
        rvm.map("db", 4096)
        txn = rvm.begin()
        with pytest.raises(TransactionError):
            txn.set_range(0x9999_0000, 4)

    def test_multiple_segments(self, rvm, proc):
        va1 = rvm.map("a", 4096)
        va2 = rvm.map("b", 4096)
        txn = rvm.begin()
        txn.set_range(va1, 4)
        txn.set_range(va2, 4)
        txn.write(va1, 1)
        txn.write(va2, 2)
        txn.commit()
        assert proc.read(va1) == 1
        assert proc.read(va2) == 2


class TestRvmRecovery:
    def test_committed_survives_crash(self, rvm, proc):
        va = rvm.map("db", 4096)
        txn = rvm.begin()
        txn.set_range(va, 4)
        txn.write(va, 1234)
        txn.commit()
        recovered = rvm.crash_and_recover()
        va2 = recovered.segments["db"].base_va
        assert proc.read(va2) == 1234

    def test_uncommitted_lost_on_crash(self, rvm, proc):
        va = rvm.map("db", 4096)
        txn = rvm.begin()
        txn.set_range(va, 4)
        txn.write(va, 1)
        txn.commit()
        txn = rvm.begin()
        txn.set_range(va, 4)
        txn.write(va, 999)  # never committed
        recovered = rvm.crash_and_recover()
        va2 = recovered.segments["db"].base_va
        assert proc.read(va2) == 1

    def test_crash_after_truncate(self, rvm, proc):
        va = rvm.map("db", 4096)
        txn = rvm.begin()
        txn.set_range(va, 4)
        txn.write(va, 7)
        txn.commit()
        rvm.truncate()
        recovered = rvm.crash_and_recover()
        va2 = recovered.segments["db"].base_va
        assert proc.read(va2) == 7

    def test_truncate_resets_wal(self, rvm, proc):
        va = rvm.map("db", 4096)
        txn = rvm.begin()
        txn.set_range(va, 4)
        txn.write(va, 7)
        txn.commit()
        assert rvm.wal.tail > 0
        rvm.truncate()
        assert rvm.wal.tail == 0

    def test_recovery_is_idempotent_with_repeated_commits(self, rvm, proc):
        va = rvm.map("db", 4096)
        for value in (5, 6, 7):
            txn = rvm.begin()
            txn.set_range(va, 4)
            txn.write(va, value)
            txn.commit()
        recovered = rvm.crash_and_recover()
        va2 = recovered.segments["db"].base_va
        assert proc.read(va2) == 7
