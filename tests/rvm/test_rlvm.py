"""Unit tests: RLVM — recoverable memory via logged regions."""

import pytest

from repro.errors import TransactionError
from repro.rvm.rlvm import RLVM


@pytest.fixture
def rlvm(machine, proc):
    return RLVM(proc)


class TestRlvmTransactions:
    def test_no_set_range_needed(self, rlvm, proc):
        """Section 2.5: 'In RLVM, no set_range() calls are needed.'"""
        va = rlvm.map("db", 4096)
        txn = rlvm.begin()
        txn.write(va, 42)  # just write
        txn.commit()
        assert proc.read(va) == 42

    def test_abort_restores_exactly_written_words(self, rlvm, proc):
        va = rlvm.map("db", 4096)
        txn = rlvm.begin()
        txn.write(va, 10)
        txn.write(va + 100, 20)
        txn.commit()

        txn = rlvm.begin()
        txn.write(va, 111)
        txn.write(va + 100, 222)
        txn.write(va + 200, 333)
        txn.abort()
        assert proc.read(va) == 10
        assert proc.read(va + 100) == 20
        assert proc.read(va + 200) == 0

    def test_abort_handles_repeated_writes_to_same_word(self, rlvm, proc):
        va = rlvm.map("db", 4096)
        txn = rlvm.begin()
        txn.write(va, 1)
        txn.commit()
        txn = rlvm.begin()
        for v in (5, 6, 7):
            txn.write(va, v)
        txn.abort()
        assert proc.read(va) == 1

    def test_subword_writes_recoverable(self, rlvm, proc):
        va = rlvm.map("db", 4096)
        txn = rlvm.begin()
        txn.write(va, 0xAABBCCDD)
        txn.commit()
        txn = rlvm.begin()
        txn.write(va + 1, 0x11, 1)
        txn.abort()
        assert proc.read(va) == 0xAABBCCDD

    def test_in_txn_write_is_cheap(self, rlvm, proc):
        """Table 3: the recoverable write costs ~16 cycles (ours: the
        saturated write-through cost, 6)."""
        va = rlvm.map("db", 4096)
        proc.write(va, 0)
        proc.machine.quiesce()
        txn = rlvm.begin()
        txn.write(va, 0)  # absorb the cold logger pipeline
        t0 = proc.now
        txn.write(va + 4, 1)
        cost = proc.now - t0
        assert cost <= 20  # two orders of magnitude below RVM's 3,515
        txn.commit()

    def test_commit_truncates_hardware_log(self, rlvm, proc):
        va = rlvm.map("db", 4096)
        txn = rlvm.begin()
        txn.write(va, 1)
        txn.commit()
        assert rlvm.segments["db"].log.record_count == 0

    def test_marker_written_on_begin(self, rlvm, proc):
        va = rlvm.map("db", 4096)
        txn = rlvm.begin()
        proc.machine.quiesce()
        records = list(rlvm.segments["db"].log.records())
        assert len(records) == 1  # the control-word marker
        assert records[0].value == txn.tid
        txn.commit()

    def test_one_txn_at_a_time(self, rlvm):
        rlvm.map("db", 4096)
        rlvm.begin()
        with pytest.raises(TransactionError):
            rlvm.begin()

    def test_multiple_segments_separate_logs(self, rlvm, proc):
        """'Using a separate log per region means that each process can
        have a separate log so transactions are not randomly intermixed'
        (section 2.5)."""
        va1 = rlvm.map("a", 4096)
        va2 = rlvm.map("b", 4096)
        txn = rlvm.begin()
        txn.write(va1, 1)
        txn.write(va2, 2)
        txn.commit()
        assert proc.read(va1) == 1
        assert proc.read(va2) == 2
        assert rlvm.segments["a"].log is not rlvm.segments["b"].log


class TestRlvmRecovery:
    def test_committed_survives_crash(self, rlvm, proc):
        va = rlvm.map("db", 4096)
        txn = rlvm.begin()
        txn.write(va, 77)
        txn.commit()
        recovered = rlvm.crash_and_recover()
        va2 = recovered.segments["db"].data_va
        assert proc.read(va2) == 77

    def test_uncommitted_lost_on_crash(self, rlvm, proc):
        va = rlvm.map("db", 4096)
        txn = rlvm.begin()
        txn.write(va, 1)
        txn.commit()
        txn = rlvm.begin()
        txn.write(va, 999)
        recovered = rlvm.crash_and_recover()
        va2 = recovered.segments["db"].data_va
        assert proc.read(va2) == 1

    def test_crash_after_truncate(self, rlvm, proc):
        va = rlvm.map("db", 4096)
        txn = rlvm.begin()
        txn.write(va, 3)
        txn.commit()
        rlvm.truncate()
        recovered = rlvm.crash_and_recover()
        assert proc.read(recovered.segments["db"].data_va) == 3


class TestRvmRlvmEquivalence:
    def test_same_final_state_for_same_workload(self, machine, proc):
        """RVM and RLVM must agree on every committed/aborted outcome."""
        from repro.rvm.rvm import RVM

        rvm = RVM(proc)
        rlvm = RLVM(proc)
        va_r = rvm.map("db", 4096)
        va_l = rlvm.map("db", 4096)

        script = [
            ("commit", [(0, 10), (4, 20)]),
            ("abort", [(0, 99), (8, 98)]),
            ("commit", [(8, 30)]),
            ("abort", [(4, 0)]),
            ("commit", [(12, 40), (0, 50)]),
        ]
        for outcome, writes in script:
            t_r = rvm.begin()
            t_l = rlvm.begin()
            for off, value in writes:
                t_r.set_range(va_r + off, 4)
                t_r.write(va_r + off, value)
                t_l.write(va_l + off, value)
            if outcome == "commit":
                t_r.commit()
                t_l.commit()
            else:
                t_r.abort()
                t_l.abort()

        for off in range(0, 16, 4):
            assert proc.read(va_r + off) == proc.read(va_l + off)
