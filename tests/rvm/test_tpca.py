"""TPC-A workload tests: correctness and the Table 3 throughput shape."""

import pytest

from repro.rvm.rlvm import RLVM
from repro.rvm.rvm import RVM
from repro.rvm.tpca import TPCABenchmark, TPCAConfig

SMALL = TPCAConfig(n_branches=2, tellers_per_branch=3, accounts_per_branch=50)


class TestTpcaCorrectness:
    def test_balances_stay_consistent_rvm(self, machine, proc):
        bench = TPCABenchmark(RVM(proc), SMALL)
        bench.run(30)
        assert bench.is_consistent()

    def test_balances_stay_consistent_rlvm(self, machine, proc):
        bench = TPCABenchmark(RLVM(proc), SMALL)
        bench.run(30)
        assert bench.is_consistent()

    def test_balances_survive_crash(self, machine, proc):
        bench = TPCABenchmark(RLVM(proc), SMALL)
        bench.run(10)
        acc, tel, brn = bench.balances()
        recovered = bench.backend.crash_and_recover()
        rseg = recovered.segments["tpca"]
        # Rebuild a read-only view over the recovered segment.
        bench2 = object.__new__(TPCABenchmark)
        bench2.backend = recovered
        bench2.config = SMALL
        bench2._is_rvm = False
        bench2._layout()
        assert bench2.is_consistent()
        assert bench2.balances() == (acc, tel, brn)

    def test_deterministic_given_seed(self, machine, proc):
        b1 = TPCABenchmark(RVM(proc), SMALL)
        r1 = b1.run(20)
        assert b1.balances() == b1.balances()
        assert r1.transactions == 20


class TestTpcaThroughputShape:
    """Table 3: 418 tps (RVM) vs 552 tps (RLVM) at 25 MHz."""

    def test_rvm_throughput_near_paper(self, machine, proc):
        res = TPCABenchmark(RVM(proc)).run(60)
        assert res.tps == pytest.approx(418, rel=0.10)

    def test_rlvm_throughput_near_paper(self, machine, proc):
        res = TPCABenchmark(RLVM(proc)).run(60)
        assert res.tps == pytest.approx(552, rel=0.10)

    def test_rlvm_beats_rvm_by_paper_ratio(self, machine, proc):
        rvm_res = TPCABenchmark(RVM(proc)).run(40)
        rlvm_res = TPCABenchmark(RLVM(proc)).run(40)
        ratio = rlvm_res.tps / rvm_res.tps
        assert ratio == pytest.approx(552 / 418, rel=0.10)

    def test_rvm_in_txn_fraction_about_quarter(self, machine, proc):
        """'Only about 25% of the CPU time in RVM is actually spent
        inside the transaction.'"""
        res = TPCABenchmark(RVM(proc)).run(40)
        assert 0.15 <= res.in_txn_fraction <= 0.35

    def test_rlvm_in_txn_fraction_under_one_percent(self, machine, proc):
        """'It does reduce the time TPC-A spends inside the transaction
        to less than 1% of the benchmark's total runtime.'"""
        res = TPCABenchmark(RLVM(proc)).run(40)
        assert res.in_txn_fraction < 0.015

    def test_commit_truncate_costs_similar_across_backends(self, machine, proc):
        """'RLVM does not reduce these costs.'"""
        rvm_res = TPCABenchmark(RVM(proc)).run(40)
        rlvm_res = TPCABenchmark(RLVM(proc)).run(40)
        rvm_ct = rvm_res.commit_truncate_cycles / rvm_res.transactions
        rlvm_ct = rlvm_res.commit_truncate_cycles / rlvm_res.transactions
        assert rlvm_ct == pytest.approx(rvm_ct, rel=0.15)
