"""Recovery edge cases: empty logs, torn final entries, crashes during
truncation, and the stale-generation hazards the durable log-head
marker and the self-terminating scan exist to prevent.
"""

import struct
import zlib

import pytest

from repro.faults import CrashPoint, FaultPlan, installed
from repro.rvm.ramdisk import RamDisk
from repro.rvm.rvm import RVM
from repro.rvm.wal import EntryKind, WriteAheadLog

# header (u32 length, u8 kind, u32 crc) + u32 tid payload
_COMMIT_FRAME_BYTES = 9 + 4


def _commit_frame(tid: int) -> bytes:
    payload = struct.pack("<I", tid)
    return (
        struct.pack("<IBI", len(payload), int(EntryKind.COMMIT), zlib.crc32(payload))
        + payload
    )


class TestEmptyAndTornLogs:
    def test_scan_recover_on_empty_disk(self):
        wal = WriteAheadLog(RamDisk(1 << 12))
        assert wal.scan_recover() == []
        assert wal.tail == 0

    def test_recovery_with_no_transactions(self, machine, proc):
        rvm = RVM(proc)
        rvm.map("db", 4096)
        recovered = rvm.crash_and_recover()
        assert proc.read(recovered.segments["db"].base_va) == 0

    def test_torn_last_entry_is_discarded(self, machine, proc):
        """Crash between a frame's header and its payload: the header is
        durable but the payload is garbage, so the scan must stop at the
        previous frame — the torn entry never committed."""
        wal = WriteAheadLog(RamDisk(1 << 12))
        plan = FaultPlan.at_site("wal.append", nth=2, mode="torn")
        with installed(plan):
            wal.append_commit(proc.cpu, 1)
            with pytest.raises(CrashPoint):
                wal.append_commit(proc.cpu, 2)
        entries = wal.scan_recover()
        assert [e.tid for e in entries] == [1]
        assert wal.tail == _COMMIT_FRAME_BYTES

    def test_disk_torn_append_keeps_a_valid_prefix(self, machine, proc):
        """A torn *device* write cuts the frame-plus-terminator blob at
        an arbitrary byte.  Depending on the cut, entry 2 either became
        fully durable or not at all — both are legal outcomes for an
        in-flight append; what recovery may never see is half of it."""
        wal = WriteAheadLog(RamDisk(1 << 12))
        plan = FaultPlan.at_disk_write(nth=2, mode="torn", seed=3)
        with installed(plan):
            wal.append_commit(proc.cpu, 1)
            with pytest.raises(CrashPoint):
                wal.append_commit(proc.cpu, 2)
        entries = wal.scan_recover()
        assert [e.tid for e in entries] in ([1], [1, 2])


class TestCrashDuringTruncation:
    def _committed_rvm(self, proc):
        rvm = RVM(proc)
        va = rvm.map("db", 4096)
        for i, value in enumerate((0x11, 0x22, 0x33)):
            txn = rvm.begin()
            txn.set_range(va + 4 * i, 4)
            txn.write(va + 4 * i, value)
            txn.commit()
        return rvm

    @staticmethod
    def _assert_values(proc, backend):
        va = backend.segments["db"].base_va
        for i, value in enumerate((0x11, 0x22, 0x33)):
            assert proc.read(va + 4 * i) == value

    def test_double_recovery_with_crashing_truncations(self, machine, proc):
        """Crash mid-way through applying the log to the images, recover,
        then crash again before the log-head reset of the *second*
        truncation, and recover again.  Replay is idempotent physical
        redo, so every committed value survives both crashes."""
        rvm = self._committed_rvm(proc)
        with installed(FaultPlan.at_site("rvm.truncate.apply", nth=2)):
            with pytest.raises(CrashPoint):
                rvm.truncate()
        recovered = rvm.crash_and_recover()
        self._assert_values(proc, recovered)

        # Re-commit something so the second truncation has work to do.
        va = recovered.segments["db"].base_va
        txn = recovered.begin()
        txn.set_range(va + 12, 4)
        txn.write(va + 12, 0x44)
        txn.commit()
        with installed(FaultPlan.at_site("wal.reset", nth=1)):
            with pytest.raises(CrashPoint):
                recovered.truncate()
        final = recovered.crash_and_recover()
        self._assert_values(proc, final)
        assert proc.read(final.segments["db"].base_va + 12) == 0x44


class TestStaleGenerationHazards:
    def test_unterminated_frames_resurrect_stale_entries(self):
        """Documents the hazard the framing discipline exists for: poke
        two generation-1 frames with *no* terminators, overwrite only
        the first with a generation-2 frame, and the scan happily walks
        past it into the stale generation-1 frame behind it."""
        disk = RamDisk(1 << 12)
        disk.poke(0, _commit_frame(7))
        disk.poke(_COMMIT_FRAME_BYTES, _commit_frame(8))
        disk.poke(0, _commit_frame(9))  # generation 2, same length
        wal = WriteAheadLog(disk)
        assert [e.tid for e in wal.scan_recover()] == [9, 8]

    def test_real_append_path_cannot_resurrect(self, machine, proc):
        """The same shape through the real API — append, durable reset,
        append a shorter new generation — must scan to exactly the new
        generation: the in-write terminator stops the scan."""
        wal = WriteAheadLog(RamDisk(1 << 12))
        wal.append_commit(proc.cpu, 7)
        wal.append_commit(proc.cpu, 8)
        wal.reset(proc.cpu)
        wal.append_commit(proc.cpu, 9)
        assert [e.tid for e in wal.scan_recover()] == [9]

    def test_reset_is_durable_before_space_reclaim(self, machine, proc):
        """Regression guard for the stale-tid resurrection bug: reset
        must durably zero the log head *before* the in-memory tail is
        reused.  A crash immediately after reset (in-memory state gone)
        then scans an empty log, not the pre-reset entries."""
        wal = WriteAheadLog(RamDisk(1 << 12))
        wal.append_commit(proc.cpu, 1)
        wal.append_commit(proc.cpu, 2)
        wal.reset(proc.cpu)
        wal.tail = 0  # crash: volatile tail is gone
        assert wal.scan_recover() == []

    def test_volatile_only_reset_would_resurrect(self, machine, proc):
        """The failing half of the regression pair: a reset that only
        clears the in-memory tail (no durable head marker) leaves the
        old entries scannable after a crash — exactly the bug the
        durable marker fixes."""
        wal = WriteAheadLog(RamDisk(1 << 12))
        wal.append_commit(proc.cpu, 1)
        wal.append_commit(proc.cpu, 2)
        wal.tail = 0  # buggy reset: nothing durable happened
        assert [e.tid for e in wal.scan_recover()] == [1, 2]
