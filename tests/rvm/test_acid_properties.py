"""Property-based ACID tests: random transaction mixes + crash injection.

For any random sequence of transactions (each committing or aborting),
with a crash injected at an arbitrary point:

* committed effects survive recovery (durability);
* aborted and in-flight effects do not (atomicity);
* RVM and RLVM arrive at identical durable states (equivalence).
"""

from hypothesis import given, settings, strategies as st

from conftest import TEST_CONFIG
from repro.core.context import boot, set_current_machine
from repro.rvm.rlvm import RLVM
from repro.rvm.rvm import RVM

SEG_BYTES = 4096

txn_strategy = st.lists(
    st.tuples(
        st.booleans(),  # commit?
        st.lists(
            st.tuples(
                st.integers(0, SEG_BYTES // 4 - 1),  # word index
                st.integers(0, 2**32 - 1),
            ),
            min_size=1,
            max_size=6,
        ),
    ),
    min_size=1,
    max_size=8,
)


def run_workload(backend_cls, proc, script, crash_after):
    """Run transactions; crash after ``crash_after`` txns; recover.

    Returns (recovered durable words, expected words) where expected is
    computed from the committed prefix.
    """
    backend = backend_cls(proc)
    va = backend.map("db", SEG_BYTES)
    expected = {}  # durable committed state, word index -> value
    for i, (commit, writes) in enumerate(script):
        crashed_mid_txn = i == crash_after
        txn = backend.begin()
        for word, value in writes:
            if backend_cls is RVM:
                txn.set_range(va + 4 * word, 4)
            txn.write(va + 4 * word, value)
        if crashed_mid_txn:
            break  # crash with this transaction in flight
        if commit:
            txn.commit()
            for word, value in writes:
                expected[word] = value
        else:
            txn.abort()
    recovered = backend.crash_and_recover()
    rseg = recovered.segments["db"]
    base = rseg.data_va if hasattr(rseg, "data_va") else rseg.base_va
    got = {w: proc.read(base + 4 * w) for w in expected}
    return got, expected


@settings(max_examples=25, deadline=None)
@given(script=txn_strategy, crash_at=st.integers(0, 8))
def test_property_rvm_acid(script, crash_at):
    machine = boot(TEST_CONFIG)
    try:
        got, expected = run_workload(RVM, machine.current_process, script, crash_at)
        assert got == expected
    finally:
        set_current_machine(None)


@settings(max_examples=25, deadline=None)
@given(script=txn_strategy, crash_at=st.integers(0, 8))
def test_property_rlvm_acid(script, crash_at):
    machine = boot(TEST_CONFIG)
    try:
        got, expected = run_workload(RLVM, machine.current_process, script, crash_at)
        assert got == expected
    finally:
        set_current_machine(None)


@settings(max_examples=20, deadline=None)
@given(script=txn_strategy)
def test_property_rvm_rlvm_durable_equivalence(script):
    """Both libraries recover to the same durable state."""
    machine = boot(TEST_CONFIG)
    try:
        proc = machine.current_process
        got_rvm, exp_rvm = run_workload(RVM, proc, script, crash_after=len(script))
        got_rlvm, exp_rlvm = run_workload(RLVM, proc, script, crash_after=len(script))
        assert exp_rvm == exp_rlvm
        assert got_rvm == got_rlvm
    finally:
        set_current_machine(None)
