"""Robustness tests: WAL corruption handling and a stress workload."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RecoveryError
from repro.rvm.ramdisk import RamDisk
from repro.rvm.rlvm import RLVM
from repro.rvm.rvm import RVM
from repro.rvm.wal import EntryKind, WriteAheadLog


class TestWalCorruption:
    def test_torn_header_detected(self, machine, proc):
        wal = WriteAheadLog(RamDisk(1 << 16))
        wal.append_commit(proc.cpu, 1)
        wal.tail += 3  # pretend 3 junk bytes were half-written
        with pytest.raises(RecoveryError):
            list(wal.entries())

    def test_torn_payload_detected(self, machine, proc):
        wal = WriteAheadLog(RamDisk(1 << 16))
        wal.append_write(proc.cpu, 1, 0, 0, b"abcdef")
        wal.tail -= 2  # the last bytes never made it to the disk
        with pytest.raises(RecoveryError):
            list(wal.entries())

    def test_data_length_mismatch_detected(self, machine, proc):
        import struct

        disk = RamDisk(1 << 16)
        wal = WriteAheadLog(disk)
        # Hand-craft a WRITE entry claiming more data than present.
        payload = struct.pack("<IHIH", 1, 0, 0, 99) + b"xx"
        frame = struct.pack("<IB", len(payload), EntryKind.WRITE) + payload
        disk.poke(0, frame)
        wal.tail = len(frame)
        with pytest.raises(RecoveryError):
            list(wal.entries())

    @settings(max_examples=25, deadline=None)
    @given(
        entries=st.lists(
            st.tuples(
                st.integers(1, 100),  # tid
                st.integers(0, 3),  # seg
                st.integers(0, 4000).map(lambda x: x & ~3),
                st.binary(min_size=1, max_size=32),
            ),
            max_size=10,
        )
    )
    def test_property_entries_roundtrip(self, entries):
        from conftest import TEST_CONFIG
        from repro.core.context import boot, set_current_machine

        machine = boot(TEST_CONFIG)
        try:
            cpu = machine.cpu(0)
            wal = WriteAheadLog(RamDisk(1 << 18))
            for tid, seg, offset, data in entries:
                wal.append_write(cpu, tid, seg, offset, data)
            decoded = list(wal.entries())
            assert [(e.tid, e.seg_id, e.offset, e.data) for e in decoded] == entries
        finally:
            set_current_machine(None)


class TestRecoverableMemoryStress:
    @pytest.mark.parametrize("backend_cls", [RVM, RLVM])
    def test_long_random_workload_with_periodic_crashes(
        self, machine, proc, backend_cls
    ):
        """Hundreds of transactions, random aborts, periodic crashes:
        the durable state always equals the committed-prefix model."""
        rng = random.Random(20_26)
        backend = backend_cls(proc)
        va = backend.map("db", 8192)
        expected = {}  # word index -> committed value

        for round_ in range(12):
            for _ in range(20):
                txn = backend.begin()
                writes = [
                    (rng.randrange(2048), rng.randrange(2**32))
                    for _ in range(rng.randrange(1, 5))
                ]
                for word, value in writes:
                    if backend_cls is RVM:
                        txn.set_range(va + 4 * word, 4)
                    txn.write(va + 4 * word, value)
                if rng.random() < 0.25:
                    txn.abort()
                else:
                    txn.commit()
                    for word, value in writes:
                        expected[word] = value
            if rng.random() < 0.5:
                backend.truncate()
            if round_ % 4 == 3:
                backend = backend.crash_and_recover()
                rseg = backend.segments["db"]
                va = rseg.data_va if hasattr(rseg, "data_va") else rseg.base_va

        backend = backend.crash_and_recover()
        rseg = backend.segments["db"]
        va = rseg.data_va if hasattr(rseg, "data_va") else rseg.base_va
        for word, value in expected.items():
            assert proc.read(va + 4 * word) == value, f"word {word}"

    def test_rlvm_abort_after_commit_interleaving(self, machine, proc):
        """Abort must restore the *committed* value, not the disk value."""
        rlvm = RLVM(proc)
        va = rlvm.map("db", 4096)
        txn = rlvm.begin()
        txn.write(va, 5)
        txn.commit()  # committed but not truncated to disk
        txn = rlvm.begin()
        txn.write(va, 6)
        txn.abort()
        assert proc.read(va) == 5
        # And the committed value survives a crash.
        recovered = rlvm.crash_and_recover()
        assert proc.read(recovered.segments["db"].data_va) == 5
