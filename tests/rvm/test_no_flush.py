"""Tests: Coda-style no-flush (lazy) commits in RVM and RLVM."""

import pytest

from repro.rvm.rlvm import RLVM
from repro.rvm.rvm import RVM


def do_commit(backend, va, value, flush):
    txn = backend.begin()
    if isinstance(backend, RVM):
        txn.set_range(va, 4)
    txn.write(va, value)
    txn.commit(flush=flush)


@pytest.mark.parametrize("backend_cls", [RVM, RLVM])
class TestNoFlushCommit:
    def test_effects_visible_immediately(self, machine, proc, backend_cls):
        backend = backend_cls(proc)
        va = backend.map("db", 4096)
        do_commit(backend, va, 7, flush=False)
        assert proc.read(va) == 7
        assert backend.pending_commits == 1

    def test_lost_on_crash_before_flush(self, machine, proc, backend_cls):
        backend = backend_cls(proc)
        va = backend.map("db", 4096)
        do_commit(backend, va, 1, flush=True)
        do_commit(backend, va, 2, flush=False)  # never flushed
        recovered = backend.crash_and_recover()
        rseg = recovered.segments["db"]
        base = rseg.data_va if hasattr(rseg, "data_va") else rseg.base_va
        assert proc.read(base) == 1  # the lazy commit evaporated

    def test_durable_after_flush(self, machine, proc, backend_cls):
        backend = backend_cls(proc)
        va = backend.map("db", 4096)
        do_commit(backend, va, 9, flush=False)
        backend.flush()
        assert backend.pending_commits == 0
        recovered = backend.crash_and_recover()
        rseg = recovered.segments["db"]
        base = rseg.data_va if hasattr(rseg, "data_va") else rseg.base_va
        assert proc.read(base) == 9

    def test_flush_batches_io(self, machine, proc, backend_cls):
        """Ten lazy commits flush in one disk operation, vs ~20 for
        eager commits."""
        backend = backend_cls(proc)
        va = backend.map("db", 4096)
        ops_before = backend.disk.write_ops
        for i in range(10):
            do_commit(backend, va + 4 * i, i, flush=False)
        assert backend.disk.write_ops == ops_before
        backend.flush()
        assert backend.disk.write_ops == ops_before + 1

    def test_no_flush_commit_is_much_cheaper(self, machine, proc, backend_cls):
        backend = backend_cls(proc)
        va = backend.map("db", 4096)
        do_commit(backend, va, 0, flush=True)  # warm everything

        t0 = proc.now
        do_commit(backend, va, 1, flush=True)
        eager = proc.now - t0

        t0 = proc.now
        do_commit(backend, va, 2, flush=False)
        lazy = proc.now - t0
        assert lazy < eager / 5

    def test_flush_ordering_preserved(self, machine, proc, backend_cls):
        """Later lazy commits override earlier ones after recovery."""
        backend = backend_cls(proc)
        va = backend.map("db", 4096)
        for value in (10, 20, 30):
            do_commit(backend, va, value, flush=False)
        backend.flush()
        recovered = backend.crash_and_recover()
        rseg = recovered.segments["db"]
        base = rseg.data_va if hasattr(rseg, "data_va") else rseg.base_va
        assert proc.read(base) == 30

    def test_empty_flush_is_free(self, machine, proc, backend_cls):
        backend = backend_cls(proc)
        backend.map("db", 4096)
        ops = backend.disk.write_ops
        backend.flush()
        assert backend.disk.write_ops == ops
