"""Unit tests: 16-byte log record format and the extended format."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LoggingError
from repro.hw.records import (
    EXTENDED_RECORD_SIZE,
    FLAG_EXTENDED,
    FLAG_VIRTUAL_ADDR,
    ExtendedLogRecord,
    LogRecord,
    decode_extended_record,
    decode_record,
    decode_records,
    encode_extended_record,
    encode_record,
)

word = st.integers(0, 2**32 - 1)
sizes = st.sampled_from([1, 2, 4])


class TestLogRecord:
    def test_encode_is_16_bytes(self):
        assert len(LogRecord(0, 0, 4, 0).encode()) == 16

    @given(addr=word, value=word, size=sizes, ts=word)
    def test_roundtrip(self, addr, value, size, ts):
        record = LogRecord(addr, value, size, ts)
        assert decode_record(record.encode()) == record

    def test_paper_example_fields(self):
        """Section 3.1.1: write of 0x4321 to 0x2340 logged with size 4."""
        record = decode_record(encode_record(0x2340, 0x4321, 4, 99))
        assert record.addr == 0x2340
        assert record.value == 0x4321
        assert record.size == 4
        assert record.timestamp == 99

    def test_virtual_flag(self):
        record = decode_record(encode_record(0, 0, 4, 0, FLAG_VIRTUAL_ADDR))
        assert record.is_virtual

    def test_invalid_size_rejected(self):
        with pytest.raises(LoggingError):
            LogRecord(0, 0, 3, 0).encode()

    def test_decode_records_stream(self):
        data = encode_record(0, 1, 4, 10) + encode_record(4, 2, 4, 11)
        records = list(decode_records(data))
        assert [r.value for r in records] == [1, 2]
        assert [r.timestamp for r in records] == [10, 11]

    def test_decode_records_bad_length(self):
        with pytest.raises(LoggingError):
            list(decode_records(b"\x00" * 15))


class TestExtendedRecord:
    def test_encode_is_24_bytes(self):
        rec = ExtendedLogRecord(0, 0, 4, 0, old_value=1, pc=2)
        assert len(rec.encode()) == EXTENDED_RECORD_SIZE

    @given(addr=word, value=word, size=sizes, ts=word, old=word, pc=word)
    def test_roundtrip(self, addr, value, size, ts, old, pc):
        data = encode_extended_record(addr, value, size, ts, old, pc)
        rec = decode_extended_record(data)
        assert (rec.addr, rec.value, rec.size, rec.timestamp) == (
            addr,
            value,
            size,
            ts,
        )
        assert (rec.old_value, rec.pc) == (old, pc)
        assert rec.flags & FLAG_EXTENDED

    def test_decode_requires_extended_flag(self):
        plain = encode_record(0, 0, 4, 0) + b"\x00" * 8
        with pytest.raises(LoggingError):
            decode_extended_record(plain)
