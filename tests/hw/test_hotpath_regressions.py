"""Regression tests for hot-path timing bugs.

Each class pins a bug that existed in the original code:

* ``Logger._process`` charged fault-handler cycles to the pipeline but
  still DMA'd (and timestamped) the record at the pre-fault completion
  cycle — records appeared in memory *before* the fault that produced
  them had been serviced.
* ``HardwareFifo.push`` returned the same truthy signal for a threshold
  crossing and for a hard-capacity overflow, so the logger counted a
  dropped entry as a fresh overload event (double-counting the overload
  interrupt and mis-attributing the lost record).
* ``CPU.drain_write_buffer`` / ``reset_time`` interaction with the
  overload-suspension ``_resume_at``.
"""

from repro.hw.bus import BusWrite, SystemBus
from repro.hw.clock import Clock
from repro.hw.cpu import CPU
from repro.hw.fifo import HardwareFifo, PushResult
from repro.hw.logger import Logger
from repro.hw.memory import PhysicalMemory
from repro.hw.params import LOG_RECORD_SIZE, PAGE_SIZE, MachineConfig
from repro.hw.records import decode_record


class ScriptedHandler:
    """Minimal fault handler with fixed 800-cycle service times."""

    def __init__(self, memory, logger):
        self.frames = [memory.allocate_frame() for _ in range(4)]
        self.next_page = 0
        self.pmt_map = {}
        self.logger = logger
        self.written = []
        self.lost = 0
        self.overloads = []

    def pmt_miss(self, paddr):
        idx = self.pmt_map.get(paddr // PAGE_SIZE)
        if idx is not None:
            self.logger.pmt.load(paddr, idx)
        return idx, 800

    def log_boundary(self, log_index):
        if self.next_page >= len(self.frames):
            return None, 800
        addr = self.frames[self.next_page].base_addr
        self.next_page += 1
        return addr, 800

    def record_written(self, log_index, paddr, nbytes):
        self.written.append((log_index, paddr, nbytes))

    def record_lost(self, log_index):
        self.lost += 1

    def overload(self, drain_cycle):
        self.overloads.append(drain_cycle)


def make_logger(**config_overrides):
    config = MachineConfig(memory_bytes=4 * 1024 * 1024, **config_overrides)
    memory = PhysicalMemory(config.num_frames)
    logger = Logger(config, memory, SystemBus(), Clock())
    handler = ScriptedHandler(memory, logger)
    logger.attach_fault_handler(handler)
    default = memory.allocate_frame()
    logger.set_default_page(default.base_addr)
    return logger, handler, memory


class TestLoggerFaultTiming:
    """A record delayed by a logging fault is DMA'd after the fault."""

    def test_pmt_miss_delays_record_dma_and_timestamp(self):
        logger, handler, memory = make_logger()
        frame = memory.allocate_frame()
        handler.pmt_map[frame.base_addr // PAGE_SIZE] = 1
        log_base = handler.frames[0].base_addr
        handler.next_page = 1
        logger.log_table.load(1, log_base)

        # PMT not preloaded: the record faults inside the pipeline.
        # Service of the record starts at 100 and completes at 128; the
        # 800-cycle pmt_miss handler returns at 928.  The DMA and the
        # record's timestamp must happen at 928, not 128.
        logger.snoop_write(100, BusWrite(frame.base_addr, 0xABCD, 4, 1, 0))
        logger.flush()

        assert logger._service_free == 928
        assert logger.bus.busy_until == 928 + logger.config.log_dma_bus_cycles
        record = decode_record(memory.read_bytes(log_base, LOG_RECORD_SIZE))
        assert record.timestamp == 928 // logger.clock._timestamp_divider
        assert logger.stats.pmt_fault_count == 1

    def test_boundary_fault_delays_record_dma_and_timestamp(self):
        logger, handler, memory = make_logger()
        frame = memory.allocate_frame()
        logger.pmt.load(frame.base_addr, 1)
        # No log-table entry: the first record takes a boundary fault,
        # serviced in 800 cycles; its DMA and timestamp land at 928.
        logger.snoop_write(100, BusWrite(frame.base_addr, 0x1111, 4, 1, 0))
        logger.flush()

        assert logger._service_free == 928
        assert logger.bus.busy_until == 928 + logger.config.log_dma_bus_cycles
        log_base = handler.frames[0].base_addr
        record = decode_record(memory.read_bytes(log_base, LOG_RECORD_SIZE))
        assert record.timestamp == 928 // logger.clock._timestamp_divider
        assert logger.stats.boundary_fault_count == 1

    def test_unfaulted_record_timing_unchanged(self):
        logger, handler, memory = make_logger()
        frame = memory.allocate_frame()
        logger.pmt.load(frame.base_addr, 1)
        log_base = handler.frames[0].base_addr
        handler.next_page = 1
        logger.log_table.load(1, log_base)

        logger.snoop_write(100, BusWrite(frame.base_addr, 0x2222, 4, 1, 0))
        logger.flush()

        assert logger._service_free == 128
        record = decode_record(memory.read_bytes(log_base, LOG_RECORD_SIZE))
        assert record.timestamp == 128 // logger.clock._timestamp_divider


class TestFifoOverflowAccounting:
    """Overflow drops the entry; it is not a fresh overload event."""

    def test_overflow_is_not_an_overload(self):
        logger, handler, memory = make_logger(
            logger_fifo_capacity=4, logger_overload_threshold=4
        )
        frame = memory.allocate_frame()
        logger.pmt.load(frame.base_addr, 1)
        # Five writes land on the bus at cycle 0; none can be serviced
        # yet, so the fifth hits hard capacity and is lost.
        for _ in range(5):
            logger.snoop_write(0, BusWrite(frame.base_addr, 1, 4, 1, 0))

        assert logger.write_fifo.occupancy == 4
        assert logger.write_fifo.overflow_count == 1
        assert logger.stats.records_dropped == 1
        assert logger.stats.overload_events == 0
        assert handler.overloads == []

    def test_threshold_crossing_still_raises_overload(self):
        logger, handler, memory = make_logger(
            logger_fifo_capacity=16, logger_overload_threshold=2
        )
        frame = memory.allocate_frame()
        logger.pmt.load(frame.base_addr, 1)
        log_base = handler.frames[0].base_addr
        handler.next_page = 1
        logger.log_table.load(1, log_base)

        for _ in range(3):
            logger.snoop_write(0, BusWrite(frame.base_addr, 1, 4, 1, 0))

        assert logger.stats.overload_events == 1
        assert len(handler.overloads) == 1
        assert logger.stats.records_dropped == 0
        assert logger.write_fifo.occupancy == 0  # the overload flushed

    def test_push_results_distinguishable(self):
        fifo = HardwareFifo(capacity=3, threshold=2)
        assert fifo.push(0, "a") is PushResult.OK
        assert fifo.push(0, "b") is PushResult.OK
        assert fifo.push(0, "c") is PushResult.THRESHOLD
        assert fifo.push(0, "d") is PushResult.OVERFLOW
        assert len(fifo) == 3


class TestCpuTimeControl:
    """reset_time / drain_write_buffer vs the suspension mechanism."""

    def make_cpu(self):
        config = MachineConfig(memory_bytes=4 * 1024 * 1024)
        return CPU(0, config, SystemBus(), Clock())

    def test_drain_is_a_fence_not_a_schedule_point(self):
        cpu = self.make_cpu()
        cpu.write_through(0x40, 1, 4, log_tag=None)  # completes at cycle 9
        cpu.suspend_until(50)
        cpu.drain_write_buffer()
        # The fence waits for the bus copy, not for the suspension.
        assert cpu._now == 9
        assert not cpu._write_buffer
        assert cpu.stats.suspend_cycles == 0
        # Observing time applies the pending suspension.
        assert cpu.now == 50
        assert cpu.stats.suspend_cycles == 41

    def test_reset_time_clears_pending_suspension(self):
        cpu = self.make_cpu()
        cpu.write_through(0x40, 1, 4, log_tag=None)
        cpu.suspend_until(500)
        cpu.reset_time()
        assert cpu._now == 0
        assert cpu._resume_at == 0
        cpu.compute(10)
        assert cpu.now == 10  # no leftover suspension charge
        assert cpu.stats.suspend_cycles == 0

    def test_reset_time_drains_buffer_first(self):
        cpu = self.make_cpu()
        complete = cpu.write_through(0x40, 1, 4, log_tag=None)
        cpu.reset_time()
        assert not cpu._write_buffer
        # The global clock saw the drain before local time was zeroed.
        assert cpu.clock.now >= complete
        assert cpu.now == 0
