"""Unit tests: physical memory, frames, and the frame allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AddressError, AlignmentError, FrameExhaustedError
from repro.hw.memory import Frame, PhysicalMemory
from repro.hw.params import PAGE_SIZE


class TestFrame:
    def test_zero_filled(self):
        frame = Frame(0)
        assert frame.read(0, 4) == 0
        assert frame.read_bytes(0, PAGE_SIZE) == bytes(PAGE_SIZE)

    def test_read_back_write(self):
        frame = Frame(3)
        frame.write(16, 0xCAFEBABE, 4)
        assert frame.read(16, 4) == 0xCAFEBABE

    def test_base_addr(self):
        assert Frame(5).base_addr == 5 * PAGE_SIZE

    def test_value_masked_to_size(self):
        frame = Frame(0)
        frame.write(0, 0x1FF, 1)
        assert frame.read(0, 1) == 0xFF

    @given(
        offset=st.integers(0, PAGE_SIZE - 4).map(lambda x: x & ~3),
        value=st.integers(0, 2**32 - 1),
    )
    def test_word_roundtrip_anywhere(self, offset, value):
        frame = Frame(0)
        frame.write(offset, value, 4)
        assert frame.read(offset, 4) == value

    def test_byte_string_roundtrip(self):
        frame = Frame(0)
        frame.write_bytes(100, b"hello world")
        assert frame.read_bytes(100, 11) == b"hello world"


class TestPhysicalMemory:
    def test_allocate_distinct_frames(self):
        mem = PhysicalMemory(num_frames=4)
        frames = [mem.allocate_frame() for _ in range(4)]
        assert len({f.number for f in frames}) == 4

    def test_exhaustion(self):
        mem = PhysicalMemory(num_frames=2)
        mem.allocate_frame()
        mem.allocate_frame()
        with pytest.raises(FrameExhaustedError):
            mem.allocate_frame()

    def test_free_and_reuse(self):
        mem = PhysicalMemory(num_frames=1)
        frame = mem.allocate_frame()
        mem.free_frame(frame)
        again = mem.allocate_frame()
        assert again.number == frame.number

    def test_double_free_rejected(self):
        mem = PhysicalMemory(num_frames=2)
        frame = mem.allocate_frame()
        mem.free_frame(frame)
        with pytest.raises(AddressError):
            mem.free_frame(frame)

    def test_physically_addressed_rw(self):
        mem = PhysicalMemory(num_frames=4)
        frame = mem.allocate_frame()
        paddr = frame.base_addr + 8
        mem.write(paddr, 0x1234, 2)
        assert mem.read(paddr, 2) == 0x1234

    def test_unbacked_address_rejected(self):
        mem = PhysicalMemory(num_frames=4)
        with pytest.raises(AddressError):
            mem.read(0, 4)

    def test_misaligned_access_rejected(self):
        mem = PhysicalMemory(num_frames=1)
        frame = mem.allocate_frame()
        with pytest.raises(AlignmentError):
            mem.read(frame.base_addr + 2, 4)

    def test_cross_page_access_rejected(self):
        mem = PhysicalMemory(num_frames=2)
        frame = mem.allocate_frame()
        with pytest.raises(AddressError):
            mem.write_bytes(frame.base_addr + PAGE_SIZE - 2, b"abcd")

    def test_frames_allocated_counter(self):
        mem = PhysicalMemory(num_frames=8)
        assert mem.frames_allocated == 0
        mem.allocate_frame()
        assert mem.frames_allocated == 1
