"""Calibration lock: the paper-pinned constants must never drift.

Every number here is traceable to a sentence of the paper (see
DESIGN.md section 1).  If a refactor changes one of these, the
reproduction's claim to the paper's results is broken — this suite
turns that into a loud failure instead of a quietly wrong benchmark.
"""

from repro.hw.params import (
    LINE_SIZE,
    LOG_RECORD_SIZE,
    NEXT_GENERATION,
    PAGE_SIZE,
    PROTOTYPE,
)


class TestPaperConstants:
    def test_machine_shape(self):
        """Section 4.1: four 25 MHz CPUs; 40 ns cycles."""
        assert PROTOTYPE.num_cpus == 4
        assert PROTOTYPE.clock_hz == 25_000_000
        assert PROTOTYPE.cycle_ns == 40.0

    def test_memory_geometry(self):
        """Section 3.1: 4 KB pages; section 4.1: 16-byte lines."""
        assert PAGE_SIZE == 4096
        assert LINE_SIZE == 16
        assert LOG_RECORD_SIZE == 16

    def test_table2_costs(self):
        assert PROTOTYPE.write_through_total_cycles == 6
        assert PROTOTYPE.write_through_bus_cycles == 5
        assert PROTOTYPE.block_write_total_cycles == 9
        assert PROTOTYPE.block_write_bus_cycles == 8
        assert PROTOTYPE.log_dma_total_cycles == 18
        assert PROTOTYPE.log_dma_bus_cycles == 8

    def test_timestamp_rate(self):
        """Section 3.1: 6.25 MHz timestamps = one tick per 4 cycles."""
        assert PROTOTYPE.clock_hz / PROTOTYPE.timestamp_divider == 6_250_000

    def test_logger_structures(self):
        """Section 3.1: 819-entry FIFOs, 512 threshold, 5/15-bit PMT."""
        assert PROTOTYPE.logger_fifo_capacity == 819
        assert PROTOTYPE.logger_overload_threshold == 512
        assert PROTOTYPE.pmt_tag_bits == 5
        assert PROTOTYPE.pmt_index_bits == 15

    def test_overload_stability_threshold(self):
        """Section 4.5.3: stable at one logged write per 27 compute
        cycles — service time balances c + 1-cycle store at c = 27."""
        assert PROTOTYPE.logger_service_cycles == 28
        assert (
            PROTOTYPE.logger_service_cycles
            - PROTOTYPE.cached_write_cycles
            == 27
        )

    def test_overload_penalty_exceeds_30k(self):
        """Section 4.5.3: overloading costs more than 30,000 cycles."""
        drain = (
            PROTOTYPE.logger_overload_threshold
            * PROTOTYPE.logger_service_cycles
        )
        assert drain + PROTOTYPE.overload_suspend_cycles > 30_000

    def test_protection_trap_cost(self):
        """Section 5.1: a software write fault takes over 3,000 cycles."""
        assert PROTOTYPE.protection_trap_cycles >= 3_000

    def test_rvm_single_write_calibration(self):
        """Table 3: 3,515 cycles per RVM recoverable write."""
        from repro.rvm.rvm import (
            REDO_RECORD_CYCLES,
            SET_RANGE_CYCLES,
            UNDO_COPY_PER_BLOCK_CYCLES,
        )

        one_word_write = (
            SET_RANGE_CYCLES
            + UNDO_COPY_PER_BLOCK_CYCLES  # one block
            + REDO_RECORD_CYCLES
            + PROTOTYPE.cached_write_cycles  # the store itself (L1 hit)
        )
        assert one_word_write == 3515

    def test_next_generation_differs_only_in_logger(self):
        """Section 4.6 changes where logging happens, not the machine."""
        assert NEXT_GENERATION.on_chip_logger
        assert not PROTOTYPE.on_chip_logger
        assert NEXT_GENERATION.write_through_total_cycles == 6
        assert NEXT_GENERATION.num_cpus == PROTOTYPE.num_cpus

    def test_l2_model_defaults_off(self):
        """The paper sizes experiments into the 4 MB L2 (section 4.1)."""
        assert not PROTOTYPE.model_l2
        assert PROTOTYPE.l2_bytes == 4 * 1024 * 1024
