"""Unit tests: cycle clock, timestamp counter, and hardware FIFOs."""

import pytest

from repro.errors import ConfigError
from repro.hw.clock import Clock
from repro.hw.fifo import HardwareFifo, PushResult


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0

    def test_advance_moves_forward(self):
        clock = Clock()
        assert clock.advance_to(100) == 100
        assert clock.now == 100

    def test_advance_backwards_is_noop(self):
        clock = Clock()
        clock.advance_to(100)
        clock.advance_to(50)
        assert clock.now == 100

    def test_timestamp_divides_by_four(self):
        clock = Clock(timestamp_divider=4)
        assert clock.timestamp(400) == 100
        assert clock.timestamp(403) == 100
        assert clock.timestamp(404) == 101

    def test_timestamp_defaults_to_now(self):
        clock = Clock(timestamp_divider=4)
        clock.advance_to(40)
        assert clock.timestamp() == 10

    def test_reset(self):
        clock = Clock()
        clock.advance_to(10)
        clock.reset()
        assert clock.now == 0

    def test_invalid_divider_rejected(self):
        with pytest.raises(ConfigError):
            Clock(timestamp_divider=0)


class TestHardwareFifo:
    def test_push_pop_fifo_order(self):
        fifo = HardwareFifo(capacity=4)
        fifo.push(1, "a")
        fifo.push(2, "b")
        assert fifo.pop() == (1, "a")
        assert fifo.pop() == (2, "b")

    def test_occupancy_and_len(self):
        fifo = HardwareFifo(capacity=4)
        assert not fifo
        fifo.push(0, "x")
        assert len(fifo) == 1
        assert fifo.occupancy == 1
        assert fifo

    def test_threshold_crossing_reported(self):
        fifo = HardwareFifo(capacity=10, threshold=2)
        assert fifo.push(0, 1) is PushResult.OK
        assert fifo.push(0, 2) is PushResult.OK
        assert fifo.push(0, 3) is PushResult.THRESHOLD  # above threshold
        assert fifo.push(0, 4) is PushResult.THRESHOLD

    def test_default_threshold_is_capacity(self):
        fifo = HardwareFifo(capacity=2)
        assert fifo.push(0, 1) is PushResult.OK
        assert fifo.push(0, 2) is PushResult.OK

    def test_overflow_drops_and_counts(self):
        fifo = HardwareFifo(capacity=2, threshold=1)
        fifo.push(0, 1)
        fifo.push(0, 2)
        # Hard-capacity overflow is distinguishable from a threshold
        # crossing: the entry is lost, not queued.
        assert fifo.push(0, 3) is PushResult.OVERFLOW
        assert fifo.overflow_count == 1
        assert len(fifo) == 2  # the third entry was lost

    def test_high_water_mark(self):
        fifo = HardwareFifo(capacity=8)
        for i in range(5):
            fifo.push(0, i)
        fifo.pop()
        fifo.pop()
        assert fifo.high_water_mark == 5

    def test_peek_does_not_remove(self):
        fifo = HardwareFifo(capacity=2)
        fifo.push(7, "v")
        assert fifo.peek() == (7, "v")
        assert len(fifo) == 1

    def test_clear(self):
        fifo = HardwareFifo(capacity=4)
        fifo.push(0, 1)
        fifo.clear()
        assert not fifo

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigError):
            HardwareFifo(capacity=0)
        with pytest.raises(ConfigError):
            HardwareFifo(capacity=2, threshold=3)
