"""Contract tests for :class:`repro.hw.clock.Clock`.

Two contracts drifted between docstring and behaviour in the past and
are locked here:

* ``advance_to`` returns the machine time *after* the call —
  ``max(now, cycle)`` — never the requested cycle;
* ``timestamp`` is the single definition of the 6.25 MHz logger counter
  (floor division by ``timestamp_divider``), and the fused hot loops
  that inline the division must agree with it bit for bit.
"""

import pytest

from repro.errors import ConfigError
from repro.hw.clock import Clock
from repro.hw.params import MachineConfig


class TestAdvanceToContract:
    def test_forward_returns_requested_cycle(self):
        clock = Clock()
        assert clock.advance_to(100) == 100
        assert clock.now == 100

    def test_backwards_is_noop_returning_later_time(self):
        # The documented contract: independent components complete work
        # out of order, so moving backwards returns the unchanged high
        # water mark — NOT the requested cycle, and NOT an error.
        clock = Clock()
        clock.advance_to(500)
        assert clock.advance_to(200) == 500
        assert clock.now == 500

    def test_equal_cycle_returns_same_time(self):
        clock = Clock()
        clock.advance_to(42)
        assert clock.advance_to(42) == 42

    def test_return_value_is_always_now(self):
        # Callers that need "when did my work land" must use their own
        # completion cycle; the return value is only ever machine time.
        clock = Clock()
        for cycle in (10, 5, 30, 30, 7, 100):
            assert clock.advance_to(cycle) == clock.now


class TestTimestampCounter:
    def test_floor_rounding_within_tick_window(self):
        # One tick per `timestamp_divider` cycles: every cycle inside a
        # window reads the same counter value (a mid-tick hardware read).
        clock = Clock(timestamp_divider=4)
        assert [clock.timestamp(c) for c in range(8)] == [
            0, 0, 0, 0, 1, 1, 1, 1,
        ]

    def test_rate_is_6_25_mhz_at_prototype_clock(self):
        # 25 MHz CPU clock / divider 4 = 6.25 MHz counter (section 3.1).
        config = MachineConfig()
        assert config.clock_hz == 25_000_000
        assert config.timestamp_divider == 4
        clock = Clock(config.timestamp_divider)
        one_second_of_cycles = config.clock_hz
        assert clock.timestamp(one_second_of_cycles) == 6_250_000

    def test_defaults_to_current_machine_time(self):
        clock = Clock(timestamp_divider=4)
        clock.advance_to(43)
        assert clock.timestamp() == clock.timestamp(43) == 10

    def test_divider_must_be_positive(self):
        with pytest.raises(ConfigError):
            Clock(timestamp_divider=0)

    @pytest.mark.parametrize("divider", [1, 2, 4, 8])
    def test_fused_loop_inline_division_agrees(self, divider):
        # The fused drain/bulk loops inline `(cycle // divider) &
        # 0xFFFFFFFF` instead of calling Clock.timestamp (attribute
        # loads cost on the hot path).  This locks the agreement: the
        # inline form must equal the single definition, including at
        # the 32-bit record-field truncation boundary.
        clock = Clock(timestamp_divider=divider)
        cycles = [0, 1, divider - 1, divider, 1_000_003,
                  (1 << 32) * divider - 1, (1 << 32) * divider + 7]
        for cycle in cycles:
            inline = (cycle // divider) & 0xFFFFFFFF
            assert inline == clock.timestamp(cycle) & 0xFFFFFFFF
