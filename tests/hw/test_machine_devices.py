"""Unit tests: machine wiring, sync/quiesce, interrupts, on-chip logger."""

import pytest

from repro.errors import ConfigError
from repro.hw.bus import SystemBus
from repro.hw.clock import Clock
from repro.hw.cpu import CPU
from repro.hw.interrupts import Interrupt, InterruptController
from repro.hw.machine import Machine
from repro.hw.memory import PhysicalMemory
from repro.hw.params import NEXT_GENERATION, PAGE_SIZE, MachineConfig
from repro.hw.records import decode_record
from repro.hw.tlb_logger import OnChipLogger

SMALL = MachineConfig(memory_bytes=8 * 1024 * 1024)


class TestMachine:
    def test_has_configured_cpus(self):
        machine = Machine(SMALL.with_changes(num_cpus=3))
        assert len(machine.cpus) == 3
        assert machine.cpu(2).index == 2

    def test_bad_cpu_index(self):
        machine = Machine(SMALL)
        with pytest.raises(ConfigError):
            machine.cpu(99)

    def test_prototype_logger_snoops_bus(self):
        machine = Machine(SMALL)
        assert machine.on_chip_logger is None
        assert machine.logger in machine.bus._snoopers

    def test_next_generation_has_onchip_logger(self):
        machine = Machine(NEXT_GENERATION.with_changes(memory_bytes=SMALL.memory_bytes))
        assert machine.on_chip_logger is not None
        assert machine.logger not in machine.bus._snoopers

    def test_time_is_high_water_mark(self):
        machine = Machine(SMALL)
        machine.cpu(0).compute(50)
        machine.cpu(1).compute(200)
        assert machine.time() == 200

    def test_suspend_all(self):
        machine = Machine(SMALL)
        machine.suspend_all_until(1000)
        assert all(cpu.now == 1000 for cpu in machine.cpus)

    def test_quiesce_drains_buffers(self):
        machine = Machine(SMALL)
        cpu = machine.cpu(0)
        complete = cpu.write_through(0x100, 1, 4, None)
        t = machine.quiesce()
        assert t >= complete

    def test_sync_waits_for_logger(self):
        """sync() charges the CPU for the logger's backlog."""
        machine = Machine(SMALL)
        frame = machine.memory.allocate_frame()
        log_frame = machine.memory.allocate_frame()
        machine.logger.pmt.load(frame.base_addr, 0)
        machine.logger.log_table.load(0, log_frame.base_addr)
        cpu = machine.cpu(0)
        for i in range(20):
            cpu.write_through(frame.base_addr + 4 * i, i, 4, log_tag=0)
        t_before = cpu.now
        machine.sync(cpu)
        # 20 records at 28 cycles each cannot have finished by t_before.
        assert cpu.now > t_before
        assert machine.logger.write_fifo.occupancy == 0

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            MachineConfig(memory_bytes=1000)  # not page aligned
        with pytest.raises(ConfigError):
            MachineConfig(num_cpus=0)
        with pytest.raises(ConfigError):
            MachineConfig(logger_overload_threshold=100, logger_fifo_capacity=50)
        with pytest.raises(ConfigError):
            MachineConfig(write_buffer_depth=0)

    def test_config_helpers(self):
        config = MachineConfig()
        assert config.cycle_ns == 40.0
        assert config.cycles_to_seconds(25_000_000) == 1.0
        assert config.num_frames == config.memory_bytes // PAGE_SIZE
        changed = config.with_changes(num_cpus=8)
        assert changed.num_cpus == 8
        assert config.num_cpus == 4  # original untouched


class TestInterruptController:
    def test_dispatch_and_count(self):
        ic = InterruptController()
        seen = []
        ic.register(Interrupt.LOGGER_OVERLOAD, lambda x: seen.append(x) or "ok")
        assert ic.raise_interrupt(Interrupt.LOGGER_OVERLOAD, 42) == "ok"
        assert seen == [42]
        assert ic.count(Interrupt.LOGGER_OVERLOAD) == 1

    def test_unregistered_vector_rejected(self):
        ic = InterruptController()
        with pytest.raises(ConfigError):
            ic.raise_interrupt(Interrupt.LOGGING_FAULT_PMT)

    def test_reset_counts(self):
        ic = InterruptController()
        ic.register(Interrupt.LOGGER_OVERLOAD, lambda: None)
        ic.raise_interrupt(Interrupt.LOGGER_OVERLOAD)
        ic.reset_counts()
        assert ic.count(Interrupt.LOGGER_OVERLOAD) == 0


class TestOnChipLogger:
    def make(self):
        config = NEXT_GENERATION.with_changes(memory_bytes=8 * 1024 * 1024)
        memory = PhysicalMemory(config.num_frames)
        bus = SystemBus()
        clock = Clock()
        cpu = CPU(0, config, bus, clock)
        logger = OnChipLogger(config, memory, bus, clock)
        return logger, cpu, memory

    def test_record_written_through_sink(self):
        logger, cpu, memory = self.make()
        frame = memory.allocate_frame()
        dests = []

        def sink(payload):
            dest = frame.base_addr + 16 * len(dests)
            dests.append(dest)
            return dest

        logger.register_log(0, sink)
        logger.logged_write(cpu, 0, vaddr=0x1000_0040, value=99, size=4)
        assert logger.records_logged == 1
        record = decode_record(memory.read_bytes(dests[0], 16))
        assert record.addr == 0x1000_0040
        assert record.is_virtual
        assert record.value == 99

    def test_unregistered_log_drops(self):
        logger, cpu, memory = self.make()
        logger.logged_write(cpu, 5, 0x1000, 1, 4)
        assert logger.records_dropped == 1

    def test_full_sink_drops(self):
        logger, cpu, memory = self.make()
        logger.register_log(0, lambda payload: None)
        logger.logged_write(cpu, 0, 0x1000, 1, 4)
        assert logger.records_dropped == 1
        assert logger.records_logged == 0

    def test_unregister(self):
        logger, cpu, memory = self.make()
        logger.register_log(0, lambda p: None)
        logger.unregister_log(0)
        logger.logged_write(cpu, 0, 0x1000, 1, 4)
        assert logger.records_dropped == 1

    def test_record_dma_occupies_bus(self):
        logger, cpu, memory = self.make()
        frame = memory.allocate_frame()
        logger.register_log(0, lambda p: frame.base_addr)
        before = cpu.bus.total_busy_cycles
        logger.logged_write(cpu, 0, 0x1000, 1, 4)
        assert cpu.bus.total_busy_cycles - before == 8  # log DMA bus time
