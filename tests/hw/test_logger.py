"""Unit tests: the bus-snooping logger device (section 3.1).

These tests drive the logger directly with a scripted fault handler,
independent of the OS layer, to pin down the hardware pipeline:
snoop → write FIFO → PMT → log table → DMA, plus logging faults,
default-page absorption, and overload.
"""


from repro.hw.bus import BusWrite, SystemBus
from repro.hw.clock import Clock
from repro.hw.logger import Logger, LogMode
from repro.hw.memory import PhysicalMemory
from repro.hw.params import LOG_RECORD_SIZE, PAGE_SIZE, MachineConfig
from repro.hw.records import decode_record


class ScriptedHandler:
    """Fault handler that serves log pages from a frame list."""

    def __init__(self, memory, npages=4):
        self.frames = [memory.allocate_frame() for _ in range(npages)]
        self.next_page = 0
        self.pmt_map = {}
        self.written = []
        self.lost = 0
        self.overloads = []
        self.logger = None  # set by make_logger

    def pmt_miss(self, paddr):
        idx = self.pmt_map.get(paddr // PAGE_SIZE)
        if idx is not None:
            # The kernel reloads the PMT entry it found (section 3.2).
            self.logger.pmt.load(paddr, idx)
        return idx, 800

    def log_boundary(self, log_index):
        if self.next_page >= len(self.frames):
            return None, 800
        addr = self.frames[self.next_page].base_addr
        self.next_page += 1
        return addr, 800

    def record_written(self, log_index, paddr, nbytes):
        self.written.append((log_index, paddr, nbytes))

    def record_lost(self, log_index):
        self.lost += 1

    def overload(self, drain_cycle):
        self.overloads.append(drain_cycle)


def make_logger(**config_overrides):
    config = MachineConfig(memory_bytes=4 * 1024 * 1024, **config_overrides)
    memory = PhysicalMemory(config.num_frames)
    bus = SystemBus()
    clock = Clock()
    logger = Logger(config, memory, bus, clock)
    handler = ScriptedHandler(memory)
    handler.logger = logger
    logger.attach_fault_handler(handler)
    default = memory.allocate_frame()
    logger.set_default_page(default.base_addr)
    return logger, handler, memory, config


def data_page(memory):
    return memory.allocate_frame()


def write_at(paddr, value=0x4321, cpu=0):
    return BusWrite(paddr=paddr, value=value, size=4, log_tag=1, cpu_index=cpu)


class TestLoggerPipeline:
    def test_untagged_writes_ignored(self):
        logger, handler, memory, _ = make_logger()
        frame = data_page(memory)
        w = BusWrite(frame.base_addr, 1, 4, log_tag=None, cpu_index=0)
        logger.snoop_write(10, w)
        assert logger.write_fifo.occupancy == 0

    def test_record_dma_contents(self):
        """The DMA'd record carries address, value, size, timestamp."""
        logger, handler, memory, _ = make_logger()
        frame = data_page(memory)
        logger.pmt.load(frame.base_addr, 1)
        log_base = handler.frames[0].base_addr
        handler.next_page = 1
        logger.log_table.load(1, log_base)

        logger.snoop_write(100, write_at(frame.base_addr + 0x40, 0x4321))
        logger.flush()

        raw = memory.read_bytes(log_base, LOG_RECORD_SIZE)
        record = decode_record(raw)
        assert record.addr == frame.base_addr + 0x40
        assert record.value == 0x4321
        assert record.size == 4
        assert record.timestamp > 0
        assert logger.stats.records_logged == 1
        assert handler.written == [(1, log_base, LOG_RECORD_SIZE)]

    def test_records_sequential_in_log(self):
        """Earlier writes land at lower offsets (section 2.1)."""
        logger, handler, memory, _ = make_logger()
        frame = data_page(memory)
        logger.pmt.load(frame.base_addr, 1)
        log_base = handler.frames[0].base_addr
        handler.next_page = 1
        logger.log_table.load(1, log_base)

        for i in range(10):
            logger.snoop_write(100 + 40 * i, write_at(frame.base_addr + 4 * i, i))
        logger.flush()

        values = [
            decode_record(memory.read_bytes(log_base + 16 * i, 16)).value
            for i in range(10)
        ]
        assert values == list(range(10))

    def test_timestamps_nondecreasing(self):
        logger, handler, memory, _ = make_logger()
        frame = data_page(memory)
        logger.pmt.load(frame.base_addr, 1)
        log_base = handler.frames[0].base_addr
        handler.next_page = 1
        logger.log_table.load(1, log_base)
        for i in range(20):
            logger.snoop_write(10 * i, write_at(frame.base_addr + 4 * i, i))
        logger.flush()
        stamps = [
            decode_record(memory.read_bytes(log_base + 16 * i, 16)).timestamp
            for i in range(20)
        ]
        assert stamps == sorted(stamps)

    def test_pmt_miss_fault_reloads(self):
        logger, handler, memory, _ = make_logger()
        frame = data_page(memory)
        handler.pmt_map[frame.base_addr // PAGE_SIZE] = 1
        log_base = handler.frames[0].base_addr
        handler.next_page = 1
        logger.log_table.load(1, log_base)

        logger.snoop_write(100, write_at(frame.base_addr))
        logger.flush()
        assert logger.stats.pmt_fault_count == 1
        assert logger.stats.records_logged == 1
        # The entry is now loaded: no further faults.
        logger.snoop_write(200, write_at(frame.base_addr + 4))
        logger.flush()
        assert logger.stats.pmt_fault_count == 1

    def test_unknown_page_drops_record(self):
        logger, handler, memory, _ = make_logger()
        frame = data_page(memory)  # never registered in pmt_map
        logger.snoop_write(100, write_at(frame.base_addr))
        logger.flush()
        assert logger.stats.records_dropped == 1
        assert logger.stats.records_logged == 0

    def test_page_boundary_fault_gets_next_page(self):
        """Crossing a page boundary invalidates and refills (section 3.2)."""
        logger, handler, memory, _ = make_logger()
        frame = data_page(memory)
        logger.pmt.load(frame.base_addr, 1)
        per_page = PAGE_SIZE // LOG_RECORD_SIZE
        n = per_page + 5

        for i in range(n):
            logger.snoop_write(100 * i, write_at(frame.base_addr + 4 * (i % 1024), i))
        logger.flush()

        assert logger.stats.records_logged == n
        # First fault loads page 0, second fault crosses into page 1.
        assert logger.stats.boundary_fault_count == 2
        assert handler.next_page == 2
        second_page = handler.frames[1].base_addr
        rec = decode_record(memory.read_bytes(second_page, 16))
        assert rec.value == per_page

    def test_default_page_absorbs_when_no_page(self):
        """Records are lost when the user has not extended the log."""
        logger, handler, memory, _ = make_logger()
        frame = data_page(memory)
        logger.pmt.load(frame.base_addr, 1)
        handler.frames = []  # no pages available at all

        logger.snoop_write(100, write_at(frame.base_addr, 7))
        logger.flush()
        assert logger.stats.records_dropped == 1
        assert logger.stats.records_logged == 0
        assert handler.lost == 1
        # The default page keeps absorbing without further allocation.
        logger.snoop_write(200, write_at(frame.base_addr + 4, 8))
        logger.flush()
        assert logger.stats.records_dropped == 2

    def test_overload_interrupt_fires_above_threshold(self):
        logger, handler, memory, config = make_logger(
            logger_fifo_capacity=16, logger_overload_threshold=4
        )
        frame = data_page(memory)
        logger.pmt.load(frame.base_addr, 1)
        handler.next_page = 1
        logger.log_table.load(1, handler.frames[0].base_addr)

        # Burst of writes at the same cycle: the pipeline cannot keep up.
        for i in range(6):
            logger.snoop_write(10, write_at(frame.base_addr + 4 * i, i))
        assert logger.stats.overload_events >= 1
        assert handler.overloads
        # The overload flush drained the queue that crossed the threshold.
        assert logger.write_fifo.occupancy <= 1
        logger.flush()
        assert logger.stats.records_logged == 6

    def test_no_overload_when_spaced_out(self):
        logger, handler, memory, config = make_logger(
            logger_fifo_capacity=16, logger_overload_threshold=4
        )
        frame = data_page(memory)
        logger.pmt.load(frame.base_addr, 1)
        handler.next_page = 1
        logger.log_table.load(1, handler.frames[0].base_addr)

        gap = config.logger_service_cycles + 5
        for i in range(20):
            logger.snoop_write(gap * i, write_at(frame.base_addr + 4 * i, i))
        logger.flush()
        assert logger.stats.overload_events == 0

    def test_indexed_mode_stores_bare_values(self):
        logger, handler, memory, _ = make_logger()
        frame = data_page(memory)
        logger.pmt.load(frame.base_addr, 1)
        logger.set_log_mode(1, LogMode.INDEXED)
        log_base = handler.frames[0].base_addr
        handler.next_page = 1
        logger.log_table.load(1, log_base)

        for i, v in enumerate([10, 20, 30]):
            logger.snoop_write(100 * (i + 1), write_at(frame.base_addr + 4 * i, v))
        logger.flush()
        got = [memory.read(log_base + 4 * i, 4) for i in range(3)]
        assert got == [10, 20, 30]

    def test_direct_mapped_mode_mirrors_offsets(self):
        logger, handler, memory, _ = make_logger()
        frame = data_page(memory)
        dest = memory.allocate_frame()
        logger.pmt.load(frame.base_addr, 1)
        logger.set_log_mode(1, LogMode.DIRECT_MAPPED)
        logger.load_direct_mapping(frame.base_addr, dest.base_addr)

        logger.snoop_write(100, write_at(frame.base_addr + 0x123 * 4, 77))
        logger.flush()
        assert memory.read(dest.base_addr + 0x123 * 4, 4) == 77

    def test_unload_log_returns_address_and_clears(self):
        logger, handler, memory, _ = make_logger()
        frame = data_page(memory)
        logger.pmt.load(frame.base_addr, 1)
        log_base = handler.frames[0].base_addr
        handler.next_page = 1
        logger.log_table.load(1, log_base)
        logger.snoop_write(100, write_at(frame.base_addr))
        logger.flush()

        addr = logger.unload_log(1)
        assert addr == log_base + LOG_RECORD_SIZE
        assert logger.pmt.lookup(frame.base_addr) is None
