"""Unit tests: page mapping table and log table (section 3.1.1)."""

import pytest

from repro.errors import LoggingError
from repro.hw.log_table import LogTable
from repro.hw.page_mapping_table import PageMappingTable
from repro.hw.params import LOG_RECORD_SIZE, PAGE_SIZE


class TestPageMappingTable:
    def test_miss_on_empty(self):
        pmt = PageMappingTable()
        assert pmt.lookup(0x1000) is None
        assert pmt.miss_count == 1

    def test_load_then_hit(self):
        pmt = PageMappingTable()
        pmt.load(0x1000, log_index=1)
        assert pmt.lookup(0x1000) == 1
        assert pmt.lookup(0x1FFF) == 1  # same page

    def test_paper_example(self):
        """Figure 6: pages 0x1xxx and 0x2xxx both map to log 1."""
        pmt = PageMappingTable()
        pmt.load(0x1000, 1)
        pmt.load(0x2000, 1)
        assert pmt.lookup(0x1234) == 1
        assert pmt.lookup(0x2234) == 1

    def test_direct_mapped_eviction(self):
        """Two pages with the same index but different tags conflict."""
        pmt = PageMappingTable(index_bits=15, tag_bits=5)
        stride = PAGE_SIZE << 15  # same index, next tag
        pmt.load(0x0000, 1)
        evicted = pmt.load(stride, 2)
        assert evicted is not None
        assert evicted.log_index == 1
        assert pmt.lookup(0x0000) is None
        assert pmt.lookup(stride) == 2
        assert pmt.eviction_count == 1

    def test_reload_same_entry_not_eviction(self):
        pmt = PageMappingTable()
        pmt.load(0x1000, 1)
        assert pmt.load(0x1000, 1) is None
        assert pmt.eviction_count == 0

    def test_invalidate(self):
        pmt = PageMappingTable()
        pmt.load(0x1000, 1)
        pmt.invalidate(0x1000)
        assert pmt.lookup(0x1000) is None

    def test_invalidate_wrong_tag_keeps_entry(self):
        pmt = PageMappingTable(index_bits=15, tag_bits=5)
        stride = PAGE_SIZE << 15
        pmt.load(0x0000, 1)
        pmt.invalidate(stride)  # same index, different tag
        assert pmt.lookup(0x0000) == 1

    def test_invalidate_log(self):
        pmt = PageMappingTable()
        pmt.load(0x1000, 1)
        pmt.load(0x2000, 1)
        pmt.load(0x3000, 2)
        pmt.invalidate_log(1)
        assert pmt.lookup(0x1000) is None
        assert pmt.lookup(0x3000) == 2
        assert len(pmt) == 1


class TestLogTable:
    def test_allocate_index_sequential(self):
        table = LogTable(4)
        a = table.allocate_index()
        table.load(a, 0)
        b = table.allocate_index()
        assert a != b

    def test_table_full(self):
        table = LogTable(1)
        table.load(table.allocate_index(), 0)
        with pytest.raises(LoggingError):
            table.allocate_index()

    def test_advance_returns_then_bumps(self):
        """Paper's Figure 6 example: log 1 appends at 0x7d20."""
        table = LogTable()
        table.load(1, 0x7D20)
        assert table.advance(1) == 0x7D20
        assert table.get(1).log_address == 0x7D20 + LOG_RECORD_SIZE

    def test_page_boundary_invalidates(self):
        table = LogTable()
        table.load(0, PAGE_SIZE - LOG_RECORD_SIZE)
        table.advance(0)
        assert not table.is_ready(0)
        with pytest.raises(LoggingError):
            table.advance(0)

    def test_records_per_page(self):
        table = LogTable()
        table.load(0, 0)
        count = 0
        while table.is_ready(0):
            table.advance(0)
            count += 1
        assert count == PAGE_SIZE // LOG_RECORD_SIZE

    def test_unaligned_load_rejected(self):
        table = LogTable()
        with pytest.raises(LoggingError):
            table.load(0, 7)

    def test_unload_returns_state(self):
        table = LogTable()
        table.load(0, 0x1000)
        table.advance(0)
        entry = table.unload(0)
        assert entry.log_address == 0x1000 + LOG_RECORD_SIZE
        assert table.get(0) is None

    def test_out_of_range_index(self):
        table = LogTable(2)
        with pytest.raises(LoggingError):
            table.load(5, 0)
