"""Behavioural tests: logger drain timing, idle_at, bus interaction."""


from repro.hw.bus import BusWrite, SystemBus
from repro.hw.clock import Clock
from repro.hw.logger import Logger
from repro.hw.memory import PhysicalMemory
from repro.hw.params import MachineConfig


def make(**overrides):
    config = MachineConfig(memory_bytes=4 * 1024 * 1024, **overrides)
    memory = PhysicalMemory(config.num_frames)
    bus = SystemBus()
    clock = Clock()
    logger = Logger(config, memory, bus, clock)
    frame = memory.allocate_frame()
    log_frame = memory.allocate_frame()
    logger.pmt.load(frame.base_addr, 0)
    logger.log_table.load(0, log_frame.base_addr)
    return logger, frame, log_frame, memory, config


def wr(frame, i):
    return BusWrite(frame.base_addr + 4 * (i % 1024), i, 4, log_tag=0, cpu_index=0)


class TestDrainTiming:
    def test_drain_respects_service_rate(self):
        logger, frame, *_ , config = make()
        for i in range(10):
            logger.snoop_write(0, wr(frame, i))
        # At time of 5 service periods, exactly 5 records are done.
        logger.drain(5 * config.logger_service_cycles)
        assert logger.stats.records_logged == 5
        assert logger.write_fifo.occupancy == 5

    def test_drain_is_idempotent(self):
        logger, frame, *_, config = make()
        logger.snoop_write(0, wr(frame, 0))
        logger.drain(10 * config.logger_service_cycles)
        logged = logger.stats.records_logged
        logger.drain(10 * config.logger_service_cycles)
        assert logger.stats.records_logged == logged

    def test_idle_pipeline_processes_at_arrival_plus_service(self):
        logger, frame, *_, config = make()
        logger.snoop_write(1000, wr(frame, 0))
        logger.drain(1000 + config.logger_service_cycles - 1)
        assert logger.stats.records_logged == 0
        logger.drain(1000 + config.logger_service_cycles)
        assert logger.stats.records_logged == 1

    def test_idle_at_accounts_for_backlog(self):
        logger, frame, *_, config = make()
        assert logger.idle_at == 0
        for i in range(4):
            logger.snoop_write(0, wr(frame, i))
        assert logger.idle_at == 4 * config.logger_service_cycles

    def test_flush_returns_completion_time(self):
        logger, frame, *_, config = make()
        for i in range(3):
            logger.snoop_write(100, wr(frame, i))
        done = logger.flush()
        assert done == 100 + 3 * config.logger_service_cycles
        assert logger.write_fifo.occupancy == 0

    def test_dma_occupies_bus(self):
        logger, frame, log_frame, memory, config = make()
        bus_before = logger.bus.total_busy_cycles
        logger.snoop_write(0, wr(frame, 0))
        logger.flush()
        assert logger.bus.total_busy_cycles - bus_before == config.log_dma_bus_cycles


class TestStatsSnapshots:
    def test_logger_stats_snapshot_keys(self):
        logger, frame, *_ = make()
        logger.snoop_write(0, wr(frame, 0))
        logger.flush()
        snap = logger.stats.snapshot()
        assert snap["records_logged"] == 1
        assert snap["records_dropped"] == 0
        assert "overload_events" in snap

    def test_cpu_stats_snapshot(self):
        from repro.hw.cpu import CPU

        config = MachineConfig()
        cpu = CPU(0, config, SystemBus(), Clock())
        cpu.compute(10)
        cpu.cached_read(0x40)
        snap = cpu.stats.snapshot()
        assert snap["compute_cycles"] == 10
        assert snap["loads"] == 1
