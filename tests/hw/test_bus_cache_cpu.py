"""Unit tests: system bus serialisation, L1 cache model, CPU timing."""

import pytest

from repro.hw.bus import BusWrite, SystemBus
from repro.hw.cache import L1Cache
from repro.hw.clock import Clock
from repro.hw.cpu import CPU
from repro.hw.params import MachineConfig

CFG = MachineConfig()


def make_cpu(config=CFG):
    bus = SystemBus()
    clock = Clock(config.timestamp_divider)
    return CPU(0, config, bus, clock), bus, clock


class TestSystemBus:
    def test_transaction_when_free(self):
        bus = SystemBus()
        assert bus.acquire(10, 5) == 15
        assert bus.busy_until == 15

    def test_transactions_serialise(self):
        bus = SystemBus()
        bus.acquire(0, 10)
        # Requested at 5 but the bus is busy until 10.
        assert bus.acquire(5, 5) == 15

    def test_busy_accounting(self):
        bus = SystemBus()
        bus.acquire(0, 5)
        bus.acquire(0, 5)
        assert bus.total_busy_cycles == 10
        assert bus.transaction_count == 2
        assert bus.utilisation(20) == 0.5

    def test_snooper_sees_write(self):
        bus = SystemBus()
        seen = []

        class Snoop:
            def snoop_write(self, cycle, write):
                seen.append((cycle, write))

        bus.add_snooper(Snoop())
        w = BusWrite(paddr=64, value=1, size=4, log_tag=0, cpu_index=0)
        complete = bus.write_transaction(0, 5, w)
        assert seen == [(complete, w)]

    def test_remove_snooper(self):
        bus = SystemBus()
        seen = []

        class Snoop:
            def snoop_write(self, cycle, write):
                seen.append(cycle)

        snoop = Snoop()
        bus.add_snooper(snoop)
        bus.remove_snooper(snoop)
        bus.write_transaction(0, 5, BusWrite(0, 0, 4, None, 0))
        assert seen == []


class TestL1Cache:
    def test_miss_then_hit(self):
        l1 = L1Cache()
        assert l1.access(0x100) is False
        assert l1.access(0x100) is True
        assert l1.access(0x104) is True  # same 16-byte line

    def test_different_lines_miss(self):
        l1 = L1Cache()
        l1.access(0x100)
        assert l1.access(0x110) is False

    def test_direct_mapped_conflict(self):
        l1 = L1Cache(size_bytes=8192, line_size=16)
        l1.access(0)
        assert l1.access(8192) is False  # same index, different tag
        assert l1.access(0) is False  # evicted

    def test_invalidate_all(self):
        l1 = L1Cache()
        l1.access(0x100)
        l1.invalidate_all()
        assert l1.contains(0x100) is False

    def test_invalidate_range(self):
        l1 = L1Cache()
        l1.access(0x100)
        l1.access(0x110)
        l1.access(0x200)
        dropped = l1.invalidate_range(0x100, 32)
        assert dropped == 2
        assert l1.contains(0x200)


class TestCpuTiming:
    def test_compute_advances_local_time(self):
        cpu, _, _ = make_cpu()
        cpu.compute(100)
        assert cpu.now == 100
        assert cpu.stats.compute_cycles == 100

    def test_negative_compute_rejected(self):
        cpu, _, _ = make_cpu()
        with pytest.raises(ValueError):
            cpu.compute(-1)

    def test_cached_read_l2_then_l1(self):
        cpu, _, _ = make_cpu()
        cpu.cached_read(0x100)
        assert cpu.now == CFG.l2_hit_cycles
        cpu.cached_read(0x100)
        assert cpu.now == CFG.l2_hit_cycles + CFG.l1_hit_cycles

    def test_single_write_through_cost(self):
        cpu, _, _ = make_cpu()
        complete = cpu.write_through(0x100, 1, 4, None)
        # The store pipeline (an L1-missing store here), then 5 bus
        # cycles to completion.
        assert cpu.now == CFG.l2_hit_cycles
        assert complete == cpu.now + CFG.write_through_bus_cycles
        # With the buffer drained, a store to the resident line is the
        # 1-cycle store-pipeline cost.
        cpu.drain_write_buffer()
        t = cpu.now
        cpu.write_through(0x104, 1, 4, None)
        assert cpu.now - t == CFG.cached_write_cycles

    def test_saturated_write_through_is_six_cycles(self):
        """Table 2: a word write-through costs ~6 cycles when saturated
        (6.75 in this model: 5 bus + the 1-cycle store, with every 4th
        store missing the L1 on a fresh line)."""
        cpu, _, _ = make_cpu()
        n = 100
        for i in range(n):
            cpu.write_through(0x100 + 4 * i, i, 4, None)
        cpu.drain_write_buffer()
        assert cpu.now == pytest.approx(6.75 * n, rel=0.05)

    def test_write_buffer_hides_latency_with_compute(self):
        """With compute between writes the buffer hides the bus time."""
        cpu, _, _ = make_cpu()
        for i in range(50):
            cpu.compute(20)
            cpu.write_through(0x100 + 4 * i, i, 4, None)
        # Each iteration should cost ~21 cycles (20 compute + 1 issue),
        # not 26 — the bus latency overlaps the compute.
        assert cpu.now <= 50 * 22

    def test_deeper_buffer_reduces_stalls(self):
        shallow, _, _ = make_cpu(CFG.with_changes(write_buffer_depth=1))
        deep, _, _ = make_cpu(CFG.with_changes(write_buffer_depth=8))
        for cpu in (shallow, deep):
            for burst in range(20):
                cpu.compute(60)
                for i in range(4):
                    cpu.write_through(4 * (4 * burst + i), 0, 4, None)
            cpu.drain_write_buffer()
        assert deep.stats.write_buffer_stalls < shallow.stats.write_buffer_stalls
        assert deep.now <= shallow.now

    def test_suspend_until(self):
        cpu, _, _ = make_cpu()
        cpu.compute(10)
        cpu.suspend_until(500)
        assert cpu.now == 500
        assert cpu.stats.suspend_cycles == 490

    def test_suspend_in_past_is_noop(self):
        cpu, _, _ = make_cpu()
        cpu.compute(100)
        cpu.suspend_until(50)
        assert cpu.now == 100

    def test_drain_write_buffer(self):
        cpu, _, _ = make_cpu()
        complete = cpu.write_through(0, 0, 4, None)
        cpu.drain_write_buffer()
        assert cpu.now == complete

    def test_reset_time(self):
        cpu, _, _ = make_cpu()
        cpu.compute(100)
        cpu.reset_time()
        assert cpu.now == 0

    def test_buffered_bus_write_backpressure(self):
        cpu, bus, _ = make_cpu(CFG.with_changes(write_buffer_depth=2))
        for _ in range(10):
            cpu.buffered_bus_write(8)
        # 10 writes x 8 bus cycles serialise; the CPU must have been
        # held back by the 2-deep buffer rather than racing ahead.
        assert cpu.now >= 8 * 8
        assert cpu.stats.write_buffer_stalls > 0
