"""Unit tests: copy-based and LVM state savers in isolation."""

import pytest

from repro.errors import RollbackError
from repro.core.context import use_machine
from repro.timewarp.cult import CultPolicy
from repro.timewarp.kernel import TimeWarpSimulation
from repro.timewarp.state_saving import (
    CopyStateSaver,
    LVMStateSaver,
)
from repro.timewarp.workloads import SyntheticModel


def make_scheduler(machine, saver, num_objects=4, s=64):
    """A single-scheduler simulation for driving the saver directly."""
    model = SyntheticModel(c=10, s=s, w=2, num_objects=num_objects, seed=1)
    sim = TimeWarpSimulation(
        model, end_time=10**9, saver=None, n_schedulers=1,
        machine=machine, saver_factory=lambda: saver,
    )
    return sim.schedulers[0]


def write_obj(sched, local, offset, value, vt):
    """Emulate an event write at virtual time vt."""
    sched.lvt = vt
    sched.saver.on_lvt_change(vt)
    sched.saver.before_event(vt, local)
    sched.proc.write(sched.saver.object_va(local) + offset, value)


class TestLvmStateSaver:
    def test_rollback_restores_checkpoint(self, machine):
        with use_machine(machine):
            saver = LVMStateSaver()
            sched = make_scheduler(machine, saver)
            write_obj(sched, 0, 0, 111, vt=5)
            write_obj(sched, 1, 4, 222, vt=7)
            saver.rollback(5)
            assert saver.working.read(saver.object_offset(0), 4) == 0
            assert saver.working.read(saver.object_offset(1) + 4, 4) == 0

    def test_rollback_replays_prefix(self, machine):
        with use_machine(machine):
            saver = LVMStateSaver()
            sched = make_scheduler(machine, saver)
            write_obj(sched, 0, 0, 111, vt=5)
            write_obj(sched, 0, 4, 222, vt=8)
            saver.rollback(8)  # undo vt>=8, keep vt=5
            assert saver.working.read(saver.object_offset(0), 4) == 111
            assert saver.working.read(saver.object_offset(0) + 4, 4) == 0

    def test_rollback_rewinds_log(self, machine):
        with use_machine(machine):
            saver = LVMStateSaver()
            sched = make_scheduler(machine, saver)
            write_obj(sched, 0, 0, 1, vt=5)
            write_obj(sched, 0, 0, 2, vt=8)
            machine.quiesce()
            before = saver.log.append_offset
            saver.rollback(8)
            assert saver.log.append_offset < before
            # New writes continue from the rewound point.
            write_obj(sched, 0, 0, 3, vt=8)
            machine.quiesce()
            values = [r.value for r in saver.log.records()]
            assert values == [5, 1, 8, 3]  # marker, data, marker, data

    def test_rollback_before_checkpoint_rejected(self, machine):
        with use_machine(machine):
            saver = LVMStateSaver()
            sched = make_scheduler(machine, saver)
            write_obj(sched, 0, 0, 1, vt=5)
            saver.advance_checkpoint(6)
            with pytest.raises(RollbackError):
                saver.rollback(3)

    def test_cult_applies_and_truncates(self, machine):
        with use_machine(machine):
            saver = LVMStateSaver()
            sched = make_scheduler(machine, saver)
            write_obj(sched, 0, 0, 10, vt=5)
            write_obj(sched, 0, 4, 20, vt=9)
            saver.advance_checkpoint(7)
            # Checkpoint now holds the vt-5 write but not the vt-9 one.
            assert saver.checkpoint.read(saver.object_offset(0), 4) == 10
            assert saver.checkpoint.read(saver.object_offset(0) + 4, 4) == 0
            assert saver.checkpoint_time == 7
            # The log retains only records at vt >= 7.
            values = [r.value for r in saver.log.records()]
            assert values == [9, 20]

    def test_rollback_after_cult(self, machine):
        with use_machine(machine):
            saver = LVMStateSaver()
            sched = make_scheduler(machine, saver)
            write_obj(sched, 0, 0, 10, vt=5)
            saver.advance_checkpoint(6)
            write_obj(sched, 0, 0, 99, vt=8)
            saver.rollback(7)
            assert saver.working.read(saver.object_offset(0), 4) == 10

    def test_cult_policy_defers_when_bottleneck(self, machine):
        with use_machine(machine):
            policy = CultPolicy(lead_margin=100, log_budget_bytes=1 << 30)
            saver = LVMStateSaver(cult_policy=policy)
            sched = make_scheduler(machine, saver)
            write_obj(sched, 0, 0, 10, vt=5)
            sched.lvt = 6  # barely ahead of GVT: the bottleneck
            saver.advance_checkpoint(6)
            assert saver.checkpoint_time == 0  # deferred

    def test_cult_policy_forced_by_log_budget(self, machine):
        with use_machine(machine):
            policy = CultPolicy(lead_margin=100, log_budget_bytes=16)
            saver = LVMStateSaver(cult_policy=policy)
            sched = make_scheduler(machine, saver)
            write_obj(sched, 0, 0, 10, vt=5)
            machine.quiesce()
            sched.lvt = 6
            saver.advance_checkpoint(6)  # log over budget: must run
            assert saver.checkpoint_time == 6

    def test_no_copies_ever_made(self, machine):
        with use_machine(machine):
            saver = LVMStateSaver()
            sched = make_scheduler(machine, saver)
            for vt in range(5, 50):
                write_obj(sched, 0, 0, vt, vt=vt)
            assert saver.state_bytes_saved == 0


class TestCopyStateSaver:
    def test_rollback_restores_saved_copies(self, machine):
        with use_machine(machine):
            saver = CopyStateSaver()
            sched = make_scheduler(machine, saver)
            write_obj(sched, 0, 0, 111, vt=5)
            write_obj(sched, 0, 0, 222, vt=8)
            saver.rollback(8)
            assert saver.working.read(saver.object_offset(0), 4) == 111

    def test_saves_object_bytes_per_event(self, machine):
        with use_machine(machine):
            saver = CopyStateSaver()
            sched = make_scheduler(machine, saver, s=64)
            write_obj(sched, 0, 0, 1, vt=5)
            write_obj(sched, 1, 0, 2, vt=6)
            assert saver.state_bytes_saved == 2 * saver.slot_size

    def test_save_cost_scales_with_object_size(self, machine):
        with use_machine(machine):
            small = CopyStateSaver()
            s_sched = make_scheduler(machine, small, s=32)
            t0 = s_sched.proc.now
            write_obj(s_sched, 0, 0, 1, vt=5)
            small_cost = s_sched.proc.now - t0
        with use_machine(machine):
            big = CopyStateSaver()
            b_sched = make_scheduler(machine, big, s=2048)
            t0 = b_sched.proc.now
            write_obj(b_sched, 0, 0, 1, vt=5)
            big_cost = b_sched.proc.now - t0
        assert big_cost > small_cost

    def test_fossil_collection_drops_old_copies(self, machine):
        with use_machine(machine):
            saver = CopyStateSaver()
            sched = make_scheduler(machine, saver)
            write_obj(sched, 0, 0, 1, vt=5)
            write_obj(sched, 0, 0, 2, vt=9)
            saver.advance_checkpoint(7)
            assert len(saver._saved) == 1
