"""Fault injection meets Time Warp: crash in the middle of a rollback's
state restoration, then prove the harness did not poison determinism —
a fresh run of the identical configuration still matches the sequential
reference exactly.
"""

import pytest

from repro.core.context import boot, set_current_machine
from repro.faults import CrashPoint, FaultPlan, installed
from repro.hw.params import MachineConfig
from repro.timewarp import PholdModel, SequentialSimulation, TimeWarpSimulation

MODEL_ARGS = dict(num_objects=6, population=6, max_delay=5, seed=42)
END_TIME = 60
#: High message latency forces deep optimism and therefore rollbacks.
LATENCY = 1500
CONFIG = MachineConfig(num_cpus=2, memory_bytes=128 * 1024 * 1024)


def _run_with_plan(saver, plan):
    machine = boot(CONFIG)
    try:
        sim = TimeWarpSimulation(
            PholdModel(**MODEL_ARGS),
            end_time=END_TIME,
            saver=saver,
            n_schedulers=2,
            machine=machine,
            latency_cycles=LATENCY,
        )
        if plan is None:
            return sim.run()
        with installed(plan):
            return sim.run()
    finally:
        set_current_machine(None)


@pytest.mark.parametrize("saver", ["copy", "lvm"])
def test_crash_during_rollback_restore_then_clean_rerun(saver):
    # Count pass: how many per-object restore steps does this
    # configuration perform?  The latency is chosen to guarantee some.
    counting = FaultPlan()
    _run_with_plan(saver, counting)
    restores = counting.counts["timewarp.rollback.restore"]
    assert restores > 0, "configuration never rolled back; raise LATENCY"

    # Crash pass: power fails mid-restore, half-way through the run's
    # rollback work.  The CrashPoint must surface out of sim.run().
    crash = FaultPlan.at_site("timewarp.rollback.restore", nth=(restores + 1) // 2)
    with pytest.raises(CrashPoint) as exc:
        _run_with_plan(saver, crash)
    assert exc.value.site == "timewarp.rollback.restore"

    # Clean re-run on a fresh machine: the injected crash left nothing
    # behind that could skew the optimistic execution — it still equals
    # the sequential reference event-for-event and state-for-state.
    seq = SequentialSimulation(PholdModel(**MODEL_ARGS), END_TIME).run()
    res = _run_with_plan(saver, None)
    assert res.events_committed == seq.events_processed
    assert res.final_state == seq.final_state
