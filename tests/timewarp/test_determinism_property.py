"""Property test: Time Warp determinism.

For any PHOLD configuration, scheduler count, state saver, and message
latency, the optimistic execution commits exactly the events the
sequential reference processes, and ends in exactly its final state.
This is the fundamental Time Warp correctness property (section 2.4's
rollback mechanism is what enforces it).
"""

from hypothesis import given, settings, strategies as st

from repro.core.context import boot, set_current_machine
from repro.hw.params import MachineConfig
from repro.timewarp import PholdModel, SequentialSimulation, TimeWarpSimulation


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    num_objects=st.integers(2, 8),
    population=st.integers(1, 8),
    max_delay=st.integers(1, 9),
    n_sched=st.integers(1, 4),
    saver=st.sampled_from(["copy", "lvm"]),
    latency=st.sampled_from([50, 400, 1500]),
    end_time=st.integers(20, 100),
)
def test_property_optimistic_equals_sequential(
    seed, num_objects, population, max_delay, n_sched, saver, latency, end_time
):
    model_args = dict(
        num_objects=num_objects,
        population=population,
        max_delay=max_delay,
        seed=seed,
    )
    seq = SequentialSimulation(PholdModel(**model_args), end_time).run()

    machine = boot(MachineConfig(num_cpus=n_sched, memory_bytes=128 * 1024 * 1024))
    try:
        sim = TimeWarpSimulation(
            PholdModel(**model_args),
            end_time=end_time,
            saver=saver,
            n_schedulers=n_sched,
            machine=machine,
            latency_cycles=latency,
        )
        res = sim.run()
        assert res.events_committed == seq.events_processed
        assert res.final_state == seq.final_state
    finally:
        set_current_machine(None)
