"""Tests: run statistics collection and derived metrics."""


from repro.core.context import boot, set_current_machine
from repro.hw.params import MachineConfig
from repro.timewarp import PholdModel, TimeWarpSimulation
from repro.timewarp.statistics import RunReport, SchedulerReport, collect_report


def run_sim(saver="lvm", n_sched=2, **kw):
    machine = boot(MachineConfig(num_cpus=n_sched, memory_bytes=128 * 1024 * 1024))
    sim = TimeWarpSimulation(
        PholdModel(num_objects=6, population=6, max_delay=4, seed=31),
        end_time=100,
        saver=saver,
        n_schedulers=n_sched,
        machine=machine,
        **kw,
    )
    sim.run()
    return sim


class TestCollectReport:
    def test_report_matches_run(self):
        sim = run_sim()
        try:
            report = collect_report(sim)
            assert len(report.schedulers) == 2
            assert report.saver_name == "lvm"
            total = sum(s.events_processed for s in report.schedulers)
            assert total == sum(s.events_processed for s in sim.schedulers)
            assert report.elapsed_cycles > 0
            assert report.gvt > 0
        finally:
            set_current_machine(None)

    def test_efficiency_bounds(self):
        sim = run_sim()
        try:
            report = collect_report(sim)
            assert 0.0 < report.efficiency <= 1.0
            for s in report.schedulers:
                assert 0.0 < s.efficiency <= 1.0
        finally:
            set_current_machine(None)

    def test_copy_saver_reports_state_bytes(self):
        sim = run_sim(saver="copy")
        try:
            report = collect_report(sim)
            assert sum(s.state_bytes_saved for s in report.schedulers) > 0
        finally:
            set_current_machine(None)

    def test_lvm_saver_saves_no_state_bytes(self):
        sim = run_sim(saver="lvm")
        try:
            report = collect_report(sim)
            assert sum(s.state_bytes_saved for s in report.schedulers) == 0
        finally:
            set_current_machine(None)

    def test_summary_lines_render(self):
        sim = run_sim()
        try:
            lines = collect_report(sim).summary_lines()
            assert len(lines) == 3
            assert "efficiency" in lines[0]
            assert "sched 0" in lines[1]
        finally:
            set_current_machine(None)

    def test_critical_scheduler_and_imbalance(self):
        sim = run_sim()
        try:
            report = collect_report(sim)
            crit = report.critical_scheduler
            assert crit.cpu_cycles == max(s.cpu_cycles for s in report.schedulers)
            assert report.load_imbalance >= 1.0
        finally:
            set_current_machine(None)


class TestDerivedMetrics:
    def test_mean_rollback_depth(self):
        s = SchedulerReport(0, 100, 30, 10, 0, 0, 0)
        assert s.mean_rollback_depth == 3.0
        assert s.efficiency == 0.7

    def test_zero_division_guards(self):
        s = SchedulerReport(0, 0, 0, 0, 0, 0, 0)
        assert s.efficiency == 1.0
        assert s.mean_rollback_depth == 0.0
        empty = RunReport()
        assert empty.efficiency == 1.0
        assert empty.load_imbalance == 1.0
