"""Unit tests: scheduler internals — queues, annihilation, rollback.

Includes regression tests for two bugs found during development (and
therefore worth pinning): antimessages must be sent *after* undone
events are re-enqueued, and pending annihilations must be counted as a
multiset because a cancelled copy and its re-sent replacement share a
uid.
"""

import pytest

from repro.core.context import use_machine
from repro.errors import SimulationError
from repro.timewarp.event import Event, EventKey, Message
from repro.timewarp.kernel import TimeWarpSimulation
from repro.timewarp.workloads import SyntheticModel


class InertModel:
    """Model that computes but schedules nothing — the tests inject
    events explicitly so queue/rollback mechanics are isolated."""

    num_objects = 4
    object_size = 32

    def initial_events(self):
        return []

    def handle_event(self, ctx, obj, payload):
        ctx.compute(10)
        ctx.write_state(obj, 0, ctx.now)


def make_sim(machine, n_sched=1, inert=True, **kw):
    model = (
        InertModel()
        if inert
        else SyntheticModel(c=10, s=32, w=1, num_objects=4, seed=1)
    )
    return TimeWarpSimulation(
        model, end_time=10**9, saver="lvm", n_schedulers=n_sched,
        machine=machine, **kw,
    )


def ev(recv_time, uid, dest=0, payload=0, sender=0):
    return Event(recv_time=recv_time, dest_obj=dest, payload=payload,
                 uid=uid, sender=sender)


class TestEventTypes:
    def test_event_key_ordering(self):
        assert EventKey(5, 1) < EventKey(5, 2) < EventKey(6, 0)

    def test_message_annihilation(self):
        m = Message(ev(5, 77))
        assert m.negative().annihilates(m)
        assert not m.annihilates(m)
        assert not Message(ev(5, 78), sign=-1).annihilates(m)


class TestSchedulerQueue:
    def test_next_key_skips_cancelled_copies(self, machine):
        with use_machine(machine):
            sched = make_sim(machine).schedulers[0]
            sched._queue.clear()  # drop the model's seed events
            sched.enqueue(ev(5, 100))
            sched.enqueue(ev(6, 200))
            sched._receive_antimessage(ev(5, 100))
            assert sched.next_key() == EventKey(6, 200)

    def test_multiset_annihilation_regression(self, machine):
        """Two pending cancellations of the same uid kill two copies."""
        with use_machine(machine):
            sched = make_sim(machine).schedulers[0]
            sched._queue.clear()
            # copy 1 arrives, is cancelled; copy 2 (re-send) arrives,
            # is cancelled too; copy 3 survives.
            sched.enqueue(ev(5, 42))
            sched._receive_antimessage(ev(5, 42))
            sched.enqueue(ev(5, 42))
            sched._receive_antimessage(ev(5, 42))
            sched.enqueue(ev(5, 42))
            assert sched.next_key() == EventKey(5, 42)
            sched._queue and sched._queue[0]
            # Exactly one live copy remains in the queue.
            live = sum(1 for _, e in sched._queue if e.uid == 42)
            assert live == 1

    def test_extra_antimessage_is_tolerated(self, machine):
        with use_machine(machine):
            sched = make_sim(machine).schedulers[0]
            sched._queue.clear()
            sched._receive_antimessage(ev(5, 999))  # never seen
            sched.enqueue(ev(5, 999))
            assert sched.next_key() == EventKey(5, 999)  # not eaten

    def test_local_min(self, machine):
        with use_machine(machine):
            sched = make_sim(machine).schedulers[0]
            sched._queue.clear()
            assert sched.local_min() is None
            sched.enqueue(ev(9, 1))
            sched.enqueue(ev(3, 2))
            assert sched.local_min() == 3

    def test_foreign_object_rejected(self, machine):
        with use_machine(machine):
            sim = make_sim(machine, n_sched=2)
            sched0 = sim.schedulers[0]
            with pytest.raises(SimulationError):
                sched0.local_index(1)  # object 1 lives on scheduler 1


class TestRollbackMechanics:
    def test_straggler_reinserts_and_reprocesses(self, machine):
        with use_machine(machine):
            sim = make_sim(machine)
            sched = sim.schedulers[0]
            sched._queue.clear()
            sched.enqueue(ev(10, 1))
            sched.enqueue(ev(20, 2))
            assert sched.step() and sched.step()
            assert sched.lvt == 20
            # A straggler at vt 15 arrives.
            sched.receive(Message(ev(15, 3)))
            assert sched.rollback_count == 1
            assert sched.events_rolled_back == 1  # only the vt-20 event
            # Reprocessing order: 15 then 20.
            assert sched.step()
            assert sched.lvt == 15
            assert sched.step()
            assert sched.lvt == 20

    def test_rollback_to_future_is_noop(self, machine):
        with use_machine(machine):
            sched = make_sim(machine).schedulers[0]
            sched._queue.clear()
            sched.enqueue(ev(10, 1))
            sched.step()
            sched.rollback(50)  # nothing processed at >= 50
            assert sched.events_rolled_back == 0
            assert sched.lvt == 10

    def test_antimessage_for_processed_event_rolls_back(self, machine):
        with use_machine(machine):
            sched = make_sim(machine).schedulers[0]
            sched._queue.clear()
            sched.enqueue(ev(10, 1))
            sched.step()
            sched.receive(Message(ev(10, 1), sign=-1))
            # The event was undone AND annihilated: nothing to process.
            assert sched.next_key() is None
            assert sched.events_rolled_back == 1

    def test_fossil_collection_trims_processed(self, machine):
        with use_machine(machine):
            sched = make_sim(machine).schedulers[0]
            sched._queue.clear()
            for i, vt in enumerate((5, 10, 15)):
                sched.enqueue(ev(vt, i + 1))
            for _ in range(3):
                sched.step()
            sched.fossil_collect(12)
            assert [p.event.recv_time for p in sched.processed] == [15]

    def test_emit_outside_event_rejected(self, machine):
        with use_machine(machine):
            sched = make_sim(machine).schedulers[0]
            with pytest.raises(SimulationError):
                sched.emit(Message(ev(5, 1)))
