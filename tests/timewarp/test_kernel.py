"""Integration tests: the Time Warp executive against the sequential
reference, under both state savers and various machine shapes."""

import pytest

from repro.core.context import boot, set_current_machine
from repro.hw.params import MachineConfig
from repro.timewarp import (
    PholdModel,
    SequentialSimulation,
    SyntheticModel,
    TimeWarpSimulation,
)


def fresh_machine(n_cpus):
    return boot(MachineConfig(num_cpus=n_cpus, memory_bytes=128 * 1024 * 1024))


def run_optimistic(model, end_time, saver, n_sched, **kw):
    machine = fresh_machine(n_sched)
    try:
        sim = TimeWarpSimulation(
            model, end_time=end_time, saver=saver,
            n_schedulers=n_sched, machine=machine, **kw,
        )
        return sim.run()
    finally:
        set_current_machine(None)


def phold(**kw):
    defaults = dict(num_objects=6, population=6, max_delay=5, seed=11)
    defaults.update(kw)
    return PholdModel(**defaults)


class TestAgainstSequential:
    @pytest.mark.parametrize("saver", ["copy", "lvm"])
    @pytest.mark.parametrize("n_sched", [1, 2, 3])
    def test_phold_matches_sequential(self, saver, n_sched):
        seq = SequentialSimulation(phold(), end_time=80).run()
        res = run_optimistic(phold(), 80, saver, n_sched)
        assert res.events_committed == seq.events_processed
        assert res.final_state == seq.final_state

    @pytest.mark.parametrize("saver", ["copy", "lvm"])
    def test_synthetic_matches_sequential(self, saver):
        model = SyntheticModel(c=100, s=64, w=3, num_objects=8, seed=5)
        seq = SequentialSimulation(model, end_time=60).run()
        res = run_optimistic(
            SyntheticModel(c=100, s=64, w=3, num_objects=8, seed=5),
            60, saver, 2,
        )
        assert res.final_state == seq.final_state

    def test_rollbacks_actually_happen(self):
        """With several schedulers and low latency the run must exercise
        the rollback machinery (otherwise these tests prove nothing)."""
        res = run_optimistic(phold(max_delay=3), 120, "lvm", 3,
                             latency_cycles=2000)
        assert res.rollbacks > 0
        assert res.events_rolled_back > 0

    def test_different_latencies_same_result(self):
        seq = SequentialSimulation(phold(), end_time=70).run()
        for latency in (50, 400, 3000):
            res = run_optimistic(phold(), 70, "lvm", 3, latency_cycles=latency)
            assert res.final_state == seq.final_state, f"latency={latency}"

    def test_different_gvt_intervals_same_result(self):
        seq = SequentialSimulation(phold(), end_time=70).run()
        for interval in (4, 64, 10_000):
            res = run_optimistic(phold(), 70, "copy", 2, gvt_interval=interval)
            assert res.final_state == seq.final_state, f"gvt={interval}"

    def test_savers_agree_with_each_other(self):
        a = run_optimistic(phold(seed=77), 90, "copy", 2)
        b = run_optimistic(phold(seed=77), 90, "lvm", 2)
        assert a.final_state == b.final_state
        assert a.events_committed == b.events_committed


class TestExecutiveMechanics:
    def test_gvt_advances(self):
        machine = fresh_machine(2)
        try:
            sim = TimeWarpSimulation(phold(), end_time=50,
                                     saver="lvm", n_schedulers=2,
                                     machine=machine)
            sim.run()
            assert sim.gvt > 0
        finally:
            set_current_machine(None)

    def test_elapsed_time_positive_and_bounded(self):
        res = run_optimistic(phold(), 40, "copy", 2)
        assert 0 < res.elapsed_cycles < 10**9

    def test_no_events_beyond_end_time_processed(self):
        machine = fresh_machine(1)
        try:
            sim = TimeWarpSimulation(phold(), end_time=30, saver="copy",
                                     n_schedulers=1, machine=machine)
            sim.run()
            for p in sim.schedulers[0].processed:
                assert p.event.recv_time <= 30
        finally:
            set_current_machine(None)

    def test_single_scheduler_never_rolls_back(self):
        """All-local causality: one scheduler processes in order."""
        res = run_optimistic(phold(), 100, "lvm", 1)
        assert res.rollbacks == 0

    def test_mismatched_cpu_count_rejected(self):
        from repro.errors import SimulationError

        machine = fresh_machine(1)
        try:
            with pytest.raises(SimulationError):
                TimeWarpSimulation(phold(), end_time=10, saver="copy",
                                   n_schedulers=2, machine=machine)
        finally:
            set_current_machine(None)

    def test_unknown_saver_rejected(self):
        from repro.errors import SimulationError

        machine = fresh_machine(1)
        try:
            with pytest.raises(SimulationError):
                TimeWarpSimulation(phold(), end_time=10, saver="bogus",
                                   n_schedulers=1, machine=machine)
        finally:
            set_current_machine(None)

    def test_lvm_overloads_surface_in_result(self):
        model = SyntheticModel(c=1, s=256, w=16, num_objects=4, seed=3)
        res = run_optimistic(model, 250, "lvm", 1, gvt_interval=100_000)
        assert res.overloads > 0
