"""The footnote-1 hazard: side effects outside logged memory.

"The logging does not directly handle the problem of undoing system
calls unless the calls are performed through a logged virtual memory
region.  These actions must otherwise be logged by a separate
mechanism." (section 1, footnote 1)

These tests demonstrate both halves: state kept outside the logged
working segment silently survives rollback (the hazard), while the same
state routed *through* a logged region rolls back correctly (the
paper's prescribed fix).
"""


from repro.core.context import use_machine
from repro.core.segment import StdSegment
from repro.timewarp.event import Event, Message
from repro.timewarp.kernel import TimeWarpSimulation
from repro.hw.params import PAGE_SIZE


class SideEffectModel:
    """Each event appends its virtual time to an external 'device'."""

    num_objects = 2
    object_size = 32

    def __init__(self, sink):
        self.sink = sink  # callable(ctx, vt): performs the "system call"

    def initial_events(self):
        return []

    def handle_event(self, ctx, obj, payload):
        ctx.compute(20)
        count = ctx.read_state(obj, 0)
        ctx.write_state(obj, 0, count + 1)
        self.sink(ctx, ctx.now)


def ev(recv_time, uid):
    return Event(recv_time=recv_time, dest_obj=0, payload=0, uid=uid)


def run_with_straggler(machine, sink):
    sim = TimeWarpSimulation(
        SideEffectModel(sink), end_time=10**9, saver="lvm",
        n_schedulers=1, machine=machine,
    )
    sched = sim.schedulers[0]
    sched.enqueue(ev(10, 1))
    sched.enqueue(ev(20, 2))
    sched.step()
    sched.step()  # optimistically processed vt=20
    sched.receive(Message(ev(15, 3)))  # straggler: undoes vt=20
    while sched.step():
        pass
    return sched


class TestUnloggedSideEffects:
    def test_python_list_sink_double_records(self, machine):
        """The hazard: an unlogged sink sees the rolled-back event too."""
        with use_machine(machine):
            outputs = []
            sched = run_with_straggler(
                machine, lambda ctx, vt: outputs.append(vt)
            )
            # vt=20 was executed, rolled back, and re-executed: the
            # external device saw it twice.
            assert outputs == [10, 20, 15, 20]
            # The logged simulation state itself is exact.
            count = int.from_bytes(sched.object_state(0)[:4], "little")
            assert count == 3

    def test_logged_region_sink_rolls_back(self, machine):
        """The fix: route the side effect through logged memory."""
        with use_machine(machine):
            device = StdSegment(PAGE_SIZE, machine=machine)
            # Make the device region part of... the working segment is
            # the only logged region per scheduler, so the model writes
            # its output into object 1's state (logged, rolled back).
            def sink(ctx, vt):
                slot = ctx.read_state(1, 4)
                ctx.write_state(1, 8 + 4 * (slot % 5), vt)
                ctx.write_state(1, 4, slot + 1)

            sched = run_with_straggler(machine, sink)
            state = sched.object_state(1)
            n = int.from_bytes(state[4:8], "little")
            outputs = [
                int.from_bytes(state[8 + 4 * i : 12 + 4 * i], "little")
                for i in range(n)
            ]
            # Exactly one record per committed event, in virtual-time
            # order: the rolled-back vt=20 execution left no trace.
            assert outputs == [10, 15, 20]
