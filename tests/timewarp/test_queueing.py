"""Tests: the closed queueing-network model on Time Warp."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.context import boot, set_current_machine
from repro.errors import SimulationError
from repro.hw.params import MachineConfig
from repro.timewarp import SequentialSimulation, TimeWarpSimulation
from repro.timewarp.queueing import (
    QueueingNetworkModel,
    network_invariants,
    station_stats,
)

ARGS = dict(num_objects=6, population=5, max_service=6, seed=13)


def run_optimistic(saver, n_sched, end_time=120, **model_args):
    args = dict(ARGS)
    args.update(model_args)
    machine = boot(MachineConfig(num_cpus=n_sched, memory_bytes=128 * 1024 * 1024))
    try:
        sim = TimeWarpSimulation(
            QueueingNetworkModel(**args),
            end_time=end_time,
            saver=saver,
            n_schedulers=n_sched,
            machine=machine,
        )
        return sim.run()
    finally:
        set_current_machine(None)


class TestSequentialBehaviour:
    def test_jobs_circulate(self):
        seq = SequentialSimulation(QueueingNetworkModel(**ARGS), 200).run()
        totals = network_invariants(seq.final_state)
        assert totals["served"] > 0
        assert totals["arrivals"] >= totals["served"]

    def test_closed_network_conserves_jobs(self):
        """Jobs waiting + in service never exceeds the population."""
        seq = SequentialSimulation(QueueingNetworkModel(**ARGS), 200).run()
        totals = network_invariants(seq.final_state)
        assert totals["queued"] + totals["busy"] <= ARGS["population"]

    def test_histogram_counts_services(self):
        seq = SequentialSimulation(QueueingNetworkModel(**ARGS), 200).run()
        started = 0
        model = QueueingNetworkModel(**ARGS)
        for state in seq.final_state.values():
            for b in range(model.histogram_buckets):
                off = 20 + 4 * b
                started += int.from_bytes(state[off : off + 4], "little")
        totals = network_invariants(seq.final_state)
        # Every departure had a service start; in-service jobs add one.
        assert started >= totals["served"]

    def test_too_small_object_rejected(self):
        with pytest.raises(SimulationError):
            QueueingNetworkModel(object_size=16)

    def test_station_stats_decoding(self):
        seq = SequentialSimulation(QueueingNetworkModel(**ARGS), 100).run()
        stats = station_stats(seq.final_state[0])
        assert set(stats) == {
            "queue_len", "busy", "served", "arrivals", "queue_integral",
        }
        assert stats["busy"] in (0, 1)


class TestOptimisticMatchesSequential:
    @pytest.mark.parametrize("saver", ["copy", "lvm"])
    @pytest.mark.parametrize("n_sched", [1, 3])
    def test_final_state_matches(self, saver, n_sched):
        seq = SequentialSimulation(QueueingNetworkModel(**ARGS), 120).run()
        res = run_optimistic(saver, n_sched)
        assert res.final_state == seq.final_state
        assert res.events_committed == seq.events_processed

    def test_rollbacks_exercised_with_contention(self):
        res = run_optimistic("lvm", 3, end_time=200, transit_delay=1)
        assert res.rollbacks > 0

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        population=st.integers(1, 8),
        saver=st.sampled_from(["copy", "lvm"]),
    )
    def test_property_queueing_determinism(self, seed, population, saver):
        args = dict(num_objects=5, population=population, max_service=5, seed=seed)
        seq = SequentialSimulation(QueueingNetworkModel(**args), 80).run()
        machine = boot(MachineConfig(num_cpus=2, memory_bytes=128 * 1024 * 1024))
        try:
            sim = TimeWarpSimulation(
                QueueingNetworkModel(**args),
                end_time=80,
                saver=saver,
                n_schedulers=2,
                machine=machine,
            )
            res = sim.run()
            assert res.final_state == seq.final_state
        finally:
            set_current_machine(None)
