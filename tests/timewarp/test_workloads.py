"""Unit tests: workload models and the deterministic event hash."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.timewarp.sequential import SequentialSimulation
from repro.timewarp.workloads import (
    PholdModel,
    SyntheticModel,
    event_hash,
    padded_object_size,
)


class TestEventHash:
    @given(st.lists(st.integers(0, 2**62), min_size=1, max_size=5))
    def test_deterministic(self, values):
        assert event_hash(*values) == event_hash(*values)

    def test_order_sensitive(self):
        assert event_hash(1, 2) != event_hash(2, 1)

    def test_spreads_values(self):
        outputs = {event_hash(7, i) % 1000 for i in range(200)}
        assert len(outputs) > 150  # no obvious clustering

    def test_64_bit_range(self):
        assert 0 <= event_hash(123) < 2**64


class TestPaddedObjectSize:
    @pytest.mark.parametrize(
        "size,padded", [(1, 16), (16, 16), (17, 32), (64, 64), (100, 112)]
    )
    def test_rounds_to_lines(self, size, padded):
        assert padded_object_size(size) == padded


class TestSyntheticModel:
    def test_too_many_writes_rejected(self):
        with pytest.raises(ValueError):
            SyntheticModel(c=10, s=16, w=8)  # 8 word writes need 32 bytes

    def test_initial_events_cover_objects(self):
        model = SyntheticModel(c=10, s=32, w=1, num_objects=5)
        events = model.initial_events()
        assert sorted(e[1] for e in events) == list(range(5))

    def test_writes_stay_inside_object(self):
        model = SyntheticModel(c=10, s=32, w=8, num_objects=2)

        class Probe:
            now = 5

            def compute(self, c):
                pass

            def write_state(self, obj, offset, value):
                assert 0 <= offset <= 32 - 4
                assert offset % 4 == 0

            def read_state(self, obj, offset):
                return 0

            def schedule(self, dest, delay, payload=0):
                assert 0 <= dest < 2
                assert delay >= 1

        model.handle_event(Probe(), 0, 0)

    def test_sequential_run_is_repeatable(self):
        a = SequentialSimulation(SyntheticModel(c=5, s=32, w=2, seed=3), 100).run()
        b = SequentialSimulation(SyntheticModel(c=5, s=32, w=2, seed=3), 100).run()
        assert a.final_state == b.final_state
        assert a.events_processed == b.events_processed

    def test_different_seeds_differ(self):
        a = SequentialSimulation(SyntheticModel(c=5, s=32, w=2, seed=1), 100).run()
        b = SequentialSimulation(SyntheticModel(c=5, s=32, w=2, seed=2), 100).run()
        assert a.final_state != b.final_state


class TestPholdModel:
    def test_population_in_flight(self):
        model = PholdModel(num_objects=4, population=6)
        assert len(model.initial_events()) == 6

    def test_event_count_grows_with_end_time(self):
        short = SequentialSimulation(PholdModel(seed=5), 40).run()
        long = SequentialSimulation(PholdModel(seed=5), 160).run()
        assert long.events_processed > short.events_processed

    def test_checksum_captures_order(self):
        """The checksum state word depends on processing order, so any
        mis-ordered optimistic execution would be caught."""
        res = SequentialSimulation(PholdModel(seed=5), 100).run()
        checksums = [
            int.from_bytes(state[4:8], "little")
            for state in res.final_state.values()
        ]
        assert any(checksums)

    def test_zero_delay_schedule_rejected(self):

        sim = SequentialSimulation(PholdModel(), 10)
        ctx = sim._ctx
        from repro.timewarp.event import Event

        object.__setattr__  # silence lint; Event is frozen
        ctx._event = Event(recv_time=5, dest_obj=0, payload=0, uid=1)
        with pytest.raises(SimulationError):
            ctx.schedule(0, 0)
