"""Tests: the memory-mapped object database (schema, CRUD, ACID)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.oodb import ObjectStore, ObjectType, SchemaError, StoreError
from repro.oodb.store import HEADER_BYTES


def customer_type():
    return ObjectType("Customer", [("balance", "u32"), ("visits", "u16"),
                                   ("tier", "u8"), ("friend", "oid")])


def order_type():
    return ObjectType("Order", [("amount", "u32"), ("customer", "oid")])


@pytest.fixture
def store(machine, proc):
    return ObjectStore(proc, size=1 << 18, types=[customer_type(), order_type()])


class TestSchema:
    def test_field_offsets_aligned(self):
        t = customer_type()
        assert t.field("balance").offset == 8  # after the 2 header words
        assert t.field("visits").offset == 12
        assert t.field("tier").offset == 14
        assert t.field("friend").offset == 16
        assert t.size % 16 == 0

    def test_unknown_field_kind(self):
        with pytest.raises(SchemaError):
            ObjectType("Bad", [("x", "f64")])

    def test_duplicate_field(self):
        with pytest.raises(SchemaError):
            ObjectType("Bad", [("x", "u32"), ("x", "u32")])

    def test_unknown_field_access(self, store):
        with store.transaction() as txn:
            c = store.new(txn, store._types[0])
        with pytest.raises(SchemaError):
            c.get("nonexistent")


class TestCrud:
    def test_create_and_read(self, store):
        ctype = store._types[0]
        with store.transaction() as txn:
            c = store.new(txn, ctype, balance=100, visits=3, tier=2)
        assert c.get("balance") == 100
        assert c.get("visits") == 3
        assert c.get("tier") == 2
        assert c.type is ctype

    def test_update_in_transaction(self, store):
        ctype = store._types[0]
        with store.transaction() as txn:
            c = store.new(txn, ctype, balance=10)
        with store.transaction() as txn:
            c.set(txn, "balance", 20)
        assert c.get("balance") == 20

    def test_references_between_objects(self, store):
        ctype, otype = store._types
        with store.transaction() as txn:
            c = store.new(txn, ctype, balance=5)
            o = store.new(txn, otype, amount=99, customer=c.oid)
        assert o.deref("customer") == c
        assert o.deref("customer").get("balance") == 5

    def test_deref_non_oid_field_rejected(self, store):
        with store.transaction() as txn:
            c = store.new(txn, store._types[0])
        with pytest.raises(SchemaError):
            c.deref("balance")

    def test_null_reference(self, store):
        with store.transaction() as txn:
            c = store.new(txn, store._types[0])
        assert c.deref("friend") is None

    def test_iteration_and_count(self, store):
        ctype = store._types[0]
        with store.transaction() as txn:
            handles = [store.new(txn, ctype, balance=i) for i in range(5)]
        assert store.count(ctype) == 5
        # Newest first.
        assert [h.get("balance") for h in store.objects(ctype)] == [4, 3, 2, 1, 0]
        assert store.count(store._types[1]) == 0

    def test_root_object(self, store):
        ctype = store._types[0]
        assert store.root() is None
        with store.transaction() as txn:
            c = store.new(txn, ctype)
            store.set_root(txn, c)
        assert store.root() == c

    def test_unregistered_type_rejected(self, store):
        ghost = ObjectType("Ghost", [("x", "u32")])
        with store.transaction() as txn:
            with pytest.raises(StoreError):
                store.new(txn, ghost)
            txn.abort()

    def test_store_full(self, machine, proc):
        tiny = ObjectStore(proc, size=HEADER_BYTES + 32,
                           types=[customer_type()])
        ctype = tiny._types[0]
        with tiny.transaction() as txn:
            tiny.new(txn, ctype)
            with pytest.raises(StoreError):
                tiny.new(txn, ctype)
            txn.abort()


class TestAtomicity:
    def test_abort_rolls_back_field_updates(self, store):
        ctype = store._types[0]
        with store.transaction() as txn:
            c = store.new(txn, ctype, balance=100)
        txn = store.rlvm.begin()
        c.set(txn, "balance", 999)
        txn.abort()
        assert c.get("balance") == 100

    def test_abort_rolls_back_allocation(self, store):
        ctype = store._types[0]
        with store.transaction() as txn:
            store.new(txn, ctype)
        txn = store.rlvm.begin()
        store.new(txn, ctype)
        store.new(txn, ctype)
        txn.abort()
        assert store.count(ctype) == 1  # the two new ones vanished
        # And the storage was reclaimed: the next object reuses it.
        with store.transaction() as txn:
            c = store.new(txn, ctype, balance=7)
        assert store.count(ctype) == 2
        assert c.get("balance") == 7

    def test_exception_in_transaction_aborts(self, store):
        ctype = store._types[0]
        with store.transaction() as txn:
            c = store.new(txn, ctype, balance=50)
        with pytest.raises(RuntimeError):
            with store.transaction() as txn:
                c.set(txn, "balance", 0)
                raise RuntimeError("business rule violated")
        assert c.get("balance") == 50


class TestDurability:
    def test_committed_objects_survive_crash(self, store):
        ctype = store._types[0]
        with store.transaction() as txn:
            c = store.new(txn, ctype, balance=123, tier=1)
            store.set_root(txn, c)
        recovered = store.crash_and_recover()
        root = recovered.root()
        assert root is not None
        assert root.get("balance") == 123
        assert root.get("tier") == 1
        assert recovered.count(recovered._types[0]) == 1

    def test_inflight_transaction_lost_on_crash(self, store):
        ctype = store._types[0]
        with store.transaction() as txn:
            store.new(txn, ctype, balance=1)
        txn = store.rlvm.begin()
        store.new(txn, ctype, balance=2)  # never committed
        recovered = store.crash_and_recover()
        assert recovered.count(recovered._types[0]) == 1

    def test_crash_after_checkpoint(self, store):
        ctype = store._types[0]
        with store.transaction() as txn:
            store.new(txn, ctype, balance=11)
        store.checkpoint()
        recovered = store.crash_and_recover()
        objs = list(recovered.objects(recovered._types[0]))
        assert [o.get("balance") for o in objs] == [11]

    def test_references_survive_crash(self, store):
        ctype, otype = store._types
        with store.transaction() as txn:
            c = store.new(txn, ctype, balance=5)
            o = store.new(txn, otype, amount=42, customer=c.oid)
            store.set_root(txn, o)
        recovered = store.crash_and_recover()
        order = recovered.root()
        assert order.get("amount") == 42
        assert order.deref("customer").get("balance") == 5


@settings(max_examples=15, deadline=None)
@given(
    script=st.lists(
        st.tuples(
            st.booleans(),  # commit?
            st.lists(st.integers(0, 2**31), min_size=1, max_size=4),
        ),
        min_size=1,
        max_size=6,
    )
)
def test_property_oodb_acid(script):
    """Committed objects (and only those) survive a crash, with their
    committed field values."""
    from conftest import TEST_CONFIG
    from repro.core.context import boot, set_current_machine

    machine = boot(TEST_CONFIG)
    try:
        proc = machine.current_process
        ctype = ObjectType("Thing", [("value", "u32")])
        store = ObjectStore(proc, size=1 << 18, types=[ctype])
        committed = []  # list of field values, in creation order
        for commit, values in script:
            txn = store.rlvm.begin()
            for v in values:
                store.new(txn, ctype, value=v)
            if commit:
                txn.commit()
                committed.extend(values)
            else:
                txn.abort()
        recovered = store.crash_and_recover()
        rtype = recovered._types[0]
        got = [h.get("value") for h in recovered.objects(rtype)]
        assert got == list(reversed(committed))
    finally:
        set_current_machine(None)
