"""Golden-value tests for :mod:`repro.analysis.logstats`.

The fixture log is small enough to compute every statistic by hand, so
these are *value* tests: a change to the aggregation arithmetic fails
loudly instead of silently shifting experiment tables.
"""

from repro.analysis.logstats import compute_stats, inter_write_gaps
from repro.hw.params import LOG_RECORD_SIZE, PAGE_SIZE
from repro.hw.records import LogRecord
from repro.obs.core import Observability, installed
from repro.obs.machine_sources import snapshot_machine
from repro.obs.workloads import run_workload

# Five writes: three to page 0 (two to the same address), two to page 2.
GOLDEN = [
    LogRecord(addr=0x0010, value=1, size=4, timestamp=100),
    LogRecord(addr=0x0010, value=2, size=4, timestamp=110),
    LogRecord(addr=0x0100, value=3, size=2, timestamp=150),
    LogRecord(addr=2 * PAGE_SIZE, value=4, size=4, timestamp=160),
    LogRecord(addr=2 * PAGE_SIZE + 8, value=5, size=1, timestamp=200),
]


class TestComputeStatsGolden:
    def test_golden_values(self):
        stats = compute_stats(GOLDEN)
        assert stats.record_count == 5
        assert stats.bytes_logged == 5 * LOG_RECORD_SIZE == 80
        assert stats.data_bytes_written == 4 + 4 + 2 + 4 + 1 == 15
        assert stats.duration_timestamps == 200 - 100 == 100
        assert stats.pages_touched == 2
        assert stats.writes_per_page == {0: 3, 2: 2}

    def test_derived_rates(self):
        stats = compute_stats(GOLDEN)
        # 5 records over 100 timestamps -> 50 per 1000 timestamps.
        assert stats.writes_per_1k_timestamps == 50.0
        # 80 log bytes carrying 15 data bytes.
        assert stats.log_expansion == 80 / 15

    def test_empty_log(self):
        stats = compute_stats([])
        assert stats.record_count == 0
        assert stats.writes_per_1k_timestamps == 0.0
        assert stats.log_expansion == 0.0
        assert stats.writes_per_page == {}

    def test_single_record_has_zero_duration(self):
        stats = compute_stats(GOLDEN[:1])
        assert stats.duration_timestamps == 0
        assert stats.writes_per_1k_timestamps == 0.0

    def test_inter_write_gaps(self):
        assert inter_write_gaps(GOLDEN) == [10, 40, 10, 40]
        assert inter_write_gaps(GOLDEN[:1]) == []


class TestMetricsAgreeWithLogstats:
    def test_counters_match_compute_stats_on_live_run(self):
        # The observability counters and the post-hoc log analysis are
        # two independent tallies of the same run; they must agree.
        with installed(Observability()) as obs:
            summary = run_workload("copy")
            stats = compute_stats(summary["log"])
            snap = snapshot_machine(summary["machine"], obs)
        assert stats.record_count == summary["records_logged"]
        assert snap["gauges"]["hw.logger.records_logged"] == stats.record_count
        assert stats.data_bytes_written == summary["bytes_written"]
        assert stats.bytes_logged == stats.record_count * LOG_RECORD_SIZE
