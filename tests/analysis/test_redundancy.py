"""Golden-value tests for :mod:`repro.analysis.redundancy`."""

from repro.analysis.redundancy import analyse, last_write_only
from repro.hw.records import LogRecord

# Address 0x20 written three times, 0x40 twice, 0x60 once.
GOLDEN = [
    LogRecord(addr=0x20, value=1, size=4, timestamp=10),
    LogRecord(addr=0x40, value=2, size=4, timestamp=20),
    LogRecord(addr=0x20, value=3, size=4, timestamp=30),
    LogRecord(addr=0x60, value=4, size=4, timestamp=40),
    LogRecord(addr=0x20, value=5, size=4, timestamp=50),
    LogRecord(addr=0x40, value=6, size=4, timestamp=60),
]


class TestAnalyseGolden:
    def test_golden_values(self):
        report = analyse(GOLDEN)
        assert report.total_writes == 6
        assert report.unique_locations == 3
        assert report.redundant_writes == 3
        assert report.hot_locations == [(0x20, 3), (0x40, 2), (0x60, 1)]

    def test_derived_ratios(self):
        report = analyse(GOLDEN)
        assert report.compression_ratio == 2.0  # 6 writes / 3 locations
        assert report.redundant_fraction == 0.5

    def test_top_limits_hot_locations(self):
        report = analyse(GOLDEN, top=1)
        assert report.hot_locations == [(0x20, 3)]
        # The summary counts are unaffected by the ranking cut-off.
        assert report.total_writes == 6

    def test_empty_log(self):
        report = analyse([])
        assert report.total_writes == 0
        assert report.compression_ratio == 1.0  # nothing redundant
        assert report.redundant_fraction == 0.0
        assert report.hot_locations == []

    def test_no_redundancy(self):
        report = analyse(GOLDEN[:2])
        assert report.redundant_writes == 0
        assert report.compression_ratio == 1.0


class TestLastWriteOnly:
    def test_collapses_to_final_values_in_time_order(self):
        collapsed = last_write_only(GOLDEN)
        assert [(r.addr, r.value) for r in collapsed] == [
            (0x60, 4),  # t=40
            (0x20, 5),  # t=50
            (0x40, 6),  # t=60
        ]

    def test_collapsed_log_has_compression_ratio_one(self):
        report = analyse(last_write_only(GOLDEN))
        assert report.redundant_writes == 0
        assert report.compression_ratio == 1.0
