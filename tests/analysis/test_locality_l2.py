"""Tests: locality analysis and the optional L2 cache model."""


from conftest import make_logged_region
from repro.analysis.locality import (
    analyse_locality,
    reuse_distances,
    working_set_curve,
)
from repro.core.context import boot, set_current_machine
from repro.core.region import StdRegion
from repro.core.segment import StdSegment
from repro.hw.params import LINE_SIZE, PAGE_SIZE, MachineConfig
from repro.hw.records import LogRecord


def rec(addr):
    return LogRecord(addr=addr, value=0, size=4, timestamp=0)


class TestReuseDistances:
    def test_first_touches_are_cold(self):
        assert reuse_distances([1, 2, 3]) == [-1, -1, -1]

    def test_immediate_reuse_is_zero(self):
        assert reuse_distances([1, 1]) == [-1, 0]

    def test_stack_distance_counts_distinct_intervening(self):
        # access 1, then 2, 3, then 1 again: two distinct lines between
        assert reuse_distances([1, 2, 3, 1]) == [-1, -1, -1, 2]

    def test_repeats_do_not_inflate_distance(self):
        assert reuse_distances([1, 2, 2, 2, 1]) == [-1, -1, 0, 0, 1]


class TestAnalyseLocality:
    def test_hot_loop_has_high_locality(self):
        records = [rec(LINE_SIZE * (i % 4)) for i in range(100)]
        report = analyse_locality(records)
        assert report.unique_lines == 4
        assert report.hot_fraction > 0.9
        assert report.cache_hit_estimate(64) > 0.9

    def test_streaming_scan_has_no_reuse(self):
        records = [rec(LINE_SIZE * i) for i in range(100)]
        report = analyse_locality(records)
        assert report.cold_accesses == 100
        assert report.hot_fraction == 0.0
        assert report.cache_hit_estimate(1 << 20) == 0.0

    def test_empty_trace(self):
        report = analyse_locality([])
        assert report.accesses == 0
        assert report.hot_fraction == 0.0

    def test_working_set_curve(self):
        records = [rec(PAGE_SIZE * (i // 64)) for i in range(256)]
        assert working_set_curve(records, window=64) == [1, 1, 1, 1]
        spread = [rec(PAGE_SIZE * i) for i in range(128)]
        assert working_set_curve(spread, window=64) == [64, 64]

    def test_from_real_log(self, machine, proc):
        region, log, va = make_logged_region(machine)
        for _ in range(3):
            for i in range(8):
                proc.write(va + 4 * i, i)
        machine.quiesce()
        report = analyse_locality(list(log.records()))
        assert report.accesses == 24
        assert report.unique_pages == 1
        assert report.unique_lines == 2  # 8 words = 2 lines
        assert report.hot_fraction > 0.9


class TestL2Model:
    def run_sweep(self, model_l2, working_set_bytes):
        machine = boot(
            MachineConfig(
                memory_bytes=256 * 1024 * 1024,
                model_l2=model_l2,
                l2_bytes=64 * 1024,  # small L2 so the test stays fast
            )
        )
        try:
            proc = machine.current_process
            seg = StdSegment(working_set_bytes, machine=machine)
            va = StdRegion(seg).bind(proc.address_space())
            # Warm up: fault pages in and take the cold L2 misses once.
            for off in range(0, working_set_bytes, 64):
                proc.read(va + off)
            t0 = proc.now
            # Two passes of strided reads over the working set.
            for _ in range(2):
                for off in range(0, working_set_bytes, 64):
                    proc.read(va + off)
            return proc.now - t0
        finally:
            set_current_machine(None)

    def test_within_l2_equals_flat_model(self):
        small = 16 * 1024  # fits the 64 KB model L2
        with_l2 = self.run_sweep(model_l2=True, working_set_bytes=small)
        flat = self.run_sweep(model_l2=False, working_set_bytes=small)
        # Once warm, a fitting working set behaves exactly like the
        # flat always-hit model.
        assert with_l2 == flat

    def test_thrashing_l2_costs_memory_latency(self):
        big = 256 * 1024  # 4x the model L2
        with_l2 = self.run_sweep(model_l2=True, working_set_bytes=big)
        flat = self.run_sweep(model_l2=False, working_set_bytes=big)
        assert with_l2 > 2 * flat

    def test_l2_shared_between_cpus(self):
        machine = boot(
            MachineConfig(
                memory_bytes=64 * 1024 * 1024, model_l2=True, l2_bytes=64 * 1024
            )
        )
        try:
            assert machine.l2 is not None
            assert all(cpu.l2 is machine.l2 for cpu in machine.cpus)
        finally:
            set_current_machine(None)

    def test_default_config_has_no_l2_model(self, machine):
        assert machine.l2 is None
