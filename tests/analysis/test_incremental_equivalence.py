"""The offline analysis modules are thin wrappers over the shared
incremental folds in :mod:`repro.analytics.core`.  These tests pin the
wrappers to naive inline oracles, so re-expressing them over the folds
provably changed nothing — and the folds' batch entry points (the
stream tap's hot paths) match their per-record forms exactly."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.analysis.locality import (
    analyse_locality,
    reuse_distances,
    working_set_curve,
)
from repro.analysis.logstats import compute_stats
from repro.analysis.redundancy import analyse, last_write_only
from repro.analytics.core import WindowedWss, _np
from repro.hw.params import LINE_SIZE, LOG_RECORD_SIZE, PAGE_SIZE
from repro.hw.records import LogRecord


def synthetic_records(n=500, seed=0x5EED):
    """A deterministic, locality-rich record stream (no RNG needed)."""
    records = []
    state = seed
    ts = 100
    for i in range(n):
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        # Mix hot loops over a few lines with occasional far jumps.
        if state % 10 < 7:
            addr = 0x1000 + (state % 16) * 4
        else:
            addr = 0x1000 + (state % 4096) * 4
        size = (1, 2, 4)[state % 3]
        ts += state % 7
        records.append(
            LogRecord(
                addr=addr,
                value=state & 0xFFFFFFFF,
                size=size,
                timestamp=ts,
            )
        )
    return records


class TestLogStatsEquivalence:
    def test_compute_stats_matches_naive_oracle(self):
        records = synthetic_records()
        stats = compute_stats(records)

        assert stats.record_count == len(records)
        assert stats.bytes_logged == len(records) * LOG_RECORD_SIZE
        assert stats.data_bytes_written == sum(r.size for r in records)
        assert stats.duration_timestamps == (
            records[-1].timestamp - records[0].timestamp
        )
        per_page = Counter(r.addr // PAGE_SIZE for r in records)
        assert stats.writes_per_page == dict(per_page)
        assert stats.pages_touched == len(per_page)

    def test_empty_log(self):
        stats = compute_stats([])
        assert stats.record_count == 0
        assert stats.duration_timestamps == 0
        assert stats.writes_per_1k_timestamps == 0.0
        assert stats.log_expansion == 0.0


class TestLocalityEquivalence:
    def test_analyse_locality_matches_reuse_distance_oracle(self):
        records = synthetic_records()
        report = analyse_locality(records)

        lines = [r.addr // LINE_SIZE for r in records]
        distances = reuse_distances(lines)
        assert report.accesses == len(records)
        assert report.unique_lines == len(set(lines))
        assert report.unique_pages == len(
            {r.addr // PAGE_SIZE for r in records}
        )
        assert report.cold_accesses == distances.count(-1)
        assert report.hot_fraction == (
            sum(1 for d in distances if 0 <= d < 8) / len(records)
        )
        histogram = Counter()
        for d in distances:
            if d < 0:
                histogram[-1] += 1
                continue
            bucket = 0
            while (1 << (bucket + 1)) <= d + 1:
                bucket += 1
            histogram[bucket] += 1
        assert report.reuse_histogram == dict(histogram)

    def test_working_set_curve_matches_chunking_oracle(self):
        records = synthetic_records(n=333)
        for window in (1, 7, 64, 500):
            curve = working_set_curve(records, window=window)
            pages = [r.addr // PAGE_SIZE for r in records]
            oracle = [
                len(set(pages[i : i + window]))
                for i in range(0, len(pages), window)
            ]
            assert curve == oracle, f"window={window}"


class TestRedundancyEquivalence:
    def test_analyse_matches_counter_oracle(self):
        records = synthetic_records()
        report = analyse(records, top=5)

        counts = Counter(r.addr for r in records)
        assert report.total_writes == len(records)
        assert report.unique_locations == len(counts)
        assert report.redundant_writes == len(records) - len(counts)
        assert report.hot_locations == counts.most_common(5)
        assert report.compression_ratio == len(records) / len(counts)
        collapsed = last_write_only(records)
        assert len(collapsed) == len(counts)
        assert {r.addr for r in collapsed} == set(counts)


class TestWindowedWssBatchPaths:
    """The stream tap's batch entry points versus the per-record fold."""

    def chunked(self, pages, sizes):
        pos = 0
        for size in sizes:
            yield pages[pos : pos + size]
            pos += size
        if pos < len(pages):
            yield pages[pos:]

    @pytest.mark.parametrize("window", [1, 3, 16, 64])
    def test_extend_pages_equals_per_page_fold(self, window):
        pages = [p % 37 for p in range(211)]
        reference = WindowedWss(window)
        for page in pages:
            reference.fold_page(page)
        batched = WindowedWss(window)
        for chunk in self.chunked(pages, [1, 5, 0, 90, 16, 2]):
            batched.extend_pages(chunk)
        assert batched.curve() == reference.curve()
        assert batched.latest == reference.latest
        assert batched.windows_closed == reference.windows_closed

    @pytest.mark.skipif(_np is None, reason="numpy not available")
    @pytest.mark.parametrize("window", [1, 3, 16, 64])
    def test_extend_pages_array_equals_per_page_fold(self, window):
        pages = [(p * 7 + p // 13) % 29 for p in range(211)]
        reference = WindowedWss(window)
        for page in pages:
            reference.fold_page(page)
        vectorised = WindowedWss(window)
        for chunk in self.chunked(pages, [2, 1, 47, 0, 128, 9]):
            vectorised.extend_pages_array(_np.asarray(chunk, dtype=_np.uint64))
        assert vectorised.curve() == reference.curve()
        assert vectorised.latest == reference.latest
        assert vectorised.windows_closed == reference.windows_closed
