"""Tests: write monitoring, reverse execution, and address tracing."""


from repro.core.log_segment import LogSegment
from repro.core.region import StdRegion
from repro.core.segment import StdSegment
from repro.debugger import (
    ReverseExecutor,
    TraceCacheSimulator,
    WriteMonitor,
    extract_trace,
    write_intensity,
)
from repro.analysis import analyse, compute_stats, last_write_only
from repro.hw.params import PAGE_SIZE


def make_target(machine, proc, size=2 * PAGE_SIZE, logged=False):
    seg = StdSegment(size, machine=machine)
    region = StdRegion(seg)
    if logged:
        region.log(LogSegment(machine=machine))
    va = region.bind(proc.address_space())
    return region, va


class TestWriteMonitor:
    def test_attaches_log_dynamically(self, machine, proc):
        region, va = make_target(machine, proc)
        assert not region.is_logged
        monitor = WriteMonitor(region)
        assert region.is_logged
        monitor.detach()
        assert not region.is_logged

    def test_watch_hits(self, machine, proc):
        region, va = make_target(machine, proc)
        monitor = WriteMonitor(region)
        monitor.watch(va + 0x100)
        proc.write(va + 0x100, 42)
        proc.write(va + 0x200, 7)  # unwatched
        hits, _ = monitor.poll()
        assert len(hits) == 1
        assert hits[0].vaddr == va + 0x100
        assert hits[0].value == 42

    def test_overwrite_detection(self, machine, proc):
        region, va = make_target(machine, proc)
        monitor = WriteMonitor(region)
        proc.write(va, 1)
        proc.write(va, 2)  # the erroneous overwrite
        _, overwrites = monitor.poll()
        assert len(overwrites) == 1
        assert (overwrites[0].first_value, overwrites[0].second_value) == (1, 2)

    def test_acknowledge_suppresses_overwrite(self, machine, proc):
        region, va = make_target(machine, proc)
        monitor = WriteMonitor(region)
        proc.write(va, 1)
        monitor.poll()
        monitor.acknowledge(va)
        proc.write(va, 2)
        _, overwrites = monitor.poll()
        assert overwrites == []

    def test_poll_consumes_records(self, machine, proc):
        region, va = make_target(machine, proc)
        monitor = WriteMonitor(region)
        proc.write(va, 1)
        monitor.poll()
        hits, overwrites = monitor.poll()
        assert hits == [] and overwrites == []

    def test_unwatch(self, machine, proc):
        region, va = make_target(machine, proc)
        monitor = WriteMonitor(region)
        monitor.watch(va)
        monitor.unwatch(va)
        proc.write(va, 1)
        hits, _ = monitor.poll()
        assert hits == []


class TestReverseExecutor:
    def test_state_at_positions(self, machine, proc):
        region, va = make_target(machine, proc)
        rex = ReverseExecutor(region)
        proc.write(va, 10)
        proc.write(va + 4, 20)
        proc.write(va, 30)
        assert len(rex) == 3
        s0 = rex.state_at(0)
        assert s0[:8] == bytes(8)
        s2 = rex.state_at(2)
        assert int.from_bytes(s2[0:4], "little") == 10
        assert int.from_bytes(s2[4:8], "little") == 20
        s3 = rex.state_at(3)
        assert int.from_bytes(s3[0:4], "little") == 30

    def test_step_back_and_forward(self, machine, proc):
        region, va = make_target(machine, proc)
        rex = ReverseExecutor(region)
        for i in range(5):
            proc.write(va, i + 1)
        state = rex.step_back(2)
        assert int.from_bytes(state[0:4], "little") == 3
        state = rex.step_forward(1)
        assert int.from_bytes(state[0:4], "little") == 4
        assert rex.position == 4

    def test_step_back_clamps_at_zero(self, machine, proc):
        region, va = make_target(machine, proc)
        rex = ReverseExecutor(region)
        proc.write(va, 1)
        state = rex.step_back(10)
        assert rex.position == 0
        assert state[:4] == bytes(4)

    def test_when_written(self, machine, proc):
        region, va = make_target(machine, proc)
        rex = ReverseExecutor(region)
        proc.write(va, 1)
        proc.write(va + 8, 2)
        proc.write(va, 3)
        hits = rex.when_written(va)
        assert [pos for pos, _ in hits] == [1, 3]
        assert [r.value for _, r in hits] == [1, 3]

    def test_checkpoint_preserves_pre_attach_state(self, machine, proc):
        region, va = make_target(machine, proc)
        proc.write(va, 0xAA)  # before the debugger attaches
        rex = ReverseExecutor(region)
        proc.write(va, 0xBB)
        assert int.from_bytes(rex.state_at(0)[0:4], "little") == 0xAA

    def test_history_quiesces_every_cpu(self, machine, proc):
        # Regression: history() used to sync only CPU 0.  Reading the
        # log is then unordered with the other CPUs' writes — the
        # cycle-domain race the sanitizer exists to catch — whereas a
        # whole-machine quiesce is a global barrier.
        from repro.core.process import Process
        from repro.sanitize import race

        region, va = make_target(machine, proc)
        rex = ReverseExecutor(region)
        other = Process(machine, cpu_index=1, address_space=proc.address_space())
        proc.write(va, 0x11)
        machine.quiesce()  # order CPU 0's write before CPU 1's
        detector = race.LogRaceDetector()
        race.install(detector)
        try:
            other.write(va, 0x22)
            assert len(rex) == 2  # CPU 1's write is visible
            proc.write(va, 0x33)  # CPU 0 writes after reading history
        finally:
            race.uninstall()
        # history()'s quiesce ordered CPU 1's write before CPU 0's next
        # one; with the old sync(cpu(0)) these two writes race.
        assert detector.races_seen == 0
        assert int.from_bytes(rex.state_at(3)[0:4], "little") == 0x33

    def test_seek_uses_checkpoints_near_the_tip(self, machine, proc):
        region, va = make_target(machine, proc)
        rex = ReverseExecutor(region, checkpoint_interval=8)
        for i in range(40):
            proc.write(va + 4 * (i % 16), i)
        rex.seek(39)
        # A near-tip seek replays only the gap past the last checkpoint,
        # never the whole 40-write history.
        assert rex.engine.stats.records_replayed < 8
        assert rex.engine.stats.checkpoints_captured == 4


class TestTraceAndAnalysis:
    def _logged_region(self, machine, proc):
        region, va = make_target(machine, proc, logged=True)
        return region, region.log_segment, va

    def test_extract_trace(self, machine, proc):
        region, log, va = self._logged_region(machine, proc)
        for i in range(10):
            proc.write(va + 4 * i, i)
        trace = extract_trace(log)
        assert len(trace) == 10
        assert all(t.size == 4 for t in trace)
        stamps = [t.timestamp for t in trace]
        assert stamps == sorted(stamps)

    def test_trace_feeds_cache_simulator(self, machine, proc):
        region, log, va = self._logged_region(machine, proc)
        for _ in range(4):
            for i in range(8):
                proc.write(va + 4 * i, i)
        trace = extract_trace(log)
        sim = TraceCacheSimulator(size_bytes=256)
        hits, misses = sim.run(trace)
        assert hits + misses == 32
        assert sim.hit_rate > 0.5  # strong locality in this loop

    def test_write_intensity_buckets(self, machine, proc):
        region, log, va = self._logged_region(machine, proc)
        proc.write(va, 1)
        proc.compute(100_000)
        proc.write(va + 4, 2)
        trace = extract_trace(log)
        buckets = write_intensity(trace, bucket_cycles=1000)
        assert buckets[0] == 1
        assert buckets[-1] == 1
        assert sum(buckets) == 2

    def test_redundancy_analysis(self, machine, proc):
        region, log, va = self._logged_region(machine, proc)
        for v in range(9):
            proc.write(va, v)  # 9 writes, 1 location
        proc.write(va + 4, 1)
        machine.quiesce()
        report = analyse(log)
        assert report.total_writes == 10
        assert report.unique_locations == 2
        assert report.redundant_writes == 8
        assert report.hot_locations[0][1] == 9
        assert report.compression_ratio == 5.0

    def test_last_write_only(self, machine, proc):
        region, log, va = self._logged_region(machine, proc)
        for v in range(5):
            proc.write(va, v)
        proc.write(va + 4, 99)
        machine.quiesce()
        collapsed = last_write_only(list(log.records()))
        assert len(collapsed) == 2
        assert sorted(r.value for r in collapsed) == [4, 99]

    def test_log_stats(self, machine, proc):
        region, log, va = self._logged_region(machine, proc)
        for i in range(20):
            proc.write(va + 64 * i, i)
        machine.quiesce()
        stats = compute_stats(log)
        assert stats.record_count == 20
        assert stats.bytes_logged == 320
        assert stats.data_bytes_written == 80
        assert stats.pages_touched == 1
        assert stats.log_expansion == 4.0

    def test_empty_log_stats(self, machine):
        from repro.analysis import compute_stats

        stats = compute_stats([])
        assert stats.record_count == 0
        assert stats.writes_per_1k_timestamps == 0.0
