"""Unit tests: bcopy, write-protect checkpointing, trap & inline logging."""


from repro.baselines.bcopy import bcopy, bcopy_cost_cycles
from repro.baselines.instrumented import InstrumentedLogger, MissedAnnotationAudit
from repro.baselines.write_protect import TrapLogger, WriteProtectCheckpointer
from repro.core.deferred_copy import reset_cost_cycles, ResetStats
from repro.core.region import StdRegion
from repro.core.segment import StdSegment
from repro.hw.params import LINES_PER_PAGE, PAGE_SIZE


class TestBcopy:
    def test_functional_copy(self, machine, proc):
        src = StdSegment(PAGE_SIZE, machine=machine)
        dst = StdSegment(PAGE_SIZE, machine=machine)
        src.write_bytes(0, b"abcdef")
        bcopy(proc.cpu, src, dst, PAGE_SIZE)
        assert dst.read_bytes(0, 6) == b"abcdef"

    def test_cost_linear_in_size(self, machine):
        c1 = bcopy_cost_cycles(machine.config, 32 * 1024)
        c2 = bcopy_cost_cycles(machine.config, 64 * 1024)
        overhead = machine.config.bcopy_call_overhead_cycles
        assert (c2 - overhead) == 2 * (c1 - overhead)

    def test_charges_cpu(self, machine, proc):
        src = StdSegment(PAGE_SIZE, machine=machine)
        dst = StdSegment(PAGE_SIZE, machine=machine)
        t0 = proc.now
        cycles = bcopy(proc.cpu, src, dst, PAGE_SIZE)
        assert proc.now - t0 == cycles == bcopy_cost_cycles(machine.config, PAGE_SIZE)

    def test_copy_respects_deferred_copy_view(self, machine, proc):
        base = StdSegment(PAGE_SIZE, machine=machine)
        base.write(0, 42, 4)
        dc = StdSegment(PAGE_SIZE, machine=machine)
        dc.source_segment(base)
        out = StdSegment(PAGE_SIZE, machine=machine)
        bcopy(proc.cpu, dc, out, PAGE_SIZE)
        assert out.read(0, 4) == 42

    def test_crossover_near_two_thirds_dirty(self, machine):
        """Section 4.4: reset beats bcopy below ~2/3 of the segment dirty."""
        config = machine.config
        npages = 128  # 512 KB segment
        seg_bytes = npages * PAGE_SIZE
        full_copy = bcopy_cost_cycles(config, seg_bytes)

        def reset_cost(dirty_fraction):
            dirty = int(npages * dirty_fraction)
            return reset_cost_cycles(
                config,
                ResetStats(
                    pages_scanned=npages,
                    dirty_pages=dirty,
                    dirty_lines=dirty * LINES_PER_PAGE,
                ),
            )

        assert reset_cost(0.5) < full_copy
        assert reset_cost(0.9) > full_copy
        # Crossover between 50% and 90%, bracketing the paper's ~2/3.
        fractions = [i / 100 for i in range(40, 100)]
        crossover = next(f for f in fractions if reset_cost(f) > full_copy)
        assert 0.55 <= crossover <= 0.8


class TestWriteProtectCheckpointer:
    def make(self, machine, proc, npages=4):
        seg = StdSegment(npages * PAGE_SIZE, machine=machine)
        region = StdRegion(seg)
        va = region.bind(proc.address_space())
        wp = WriteProtectCheckpointer(proc, region)
        return wp, region, va

    def test_first_write_per_page_faults(self, machine, proc):
        wp, region, va = self.make(machine, proc)
        wp.checkpoint()
        wp.write(va, 1)
        wp.write(va + 4, 2)  # same page: no second fault
        wp.write(va + PAGE_SIZE, 3)  # new page: faults
        assert wp.fault_count == 2
        assert wp.dirty_pages == 2

    def test_fault_costs_trap_plus_copy(self, machine, proc):
        wp, region, va = self.make(machine, proc)
        wp.checkpoint()
        t0 = proc.now
        wp.write(va, 1)
        assert proc.now - t0 >= machine.config.protection_trap_cycles

    def test_restore_rolls_back_dirty_pages(self, machine, proc):
        wp, region, va = self.make(machine, proc)
        proc.write(va, 10)
        proc.write(va + PAGE_SIZE, 20)
        wp.checkpoint()
        wp.write(va, 99)
        wp.write(va + PAGE_SIZE, 88)
        wp.restore()
        assert proc.read(va) == 10
        assert proc.read(va + PAGE_SIZE) == 20

    def test_restore_reprotects(self, machine, proc):
        wp, region, va = self.make(machine, proc)
        wp.checkpoint()
        wp.write(va, 1)
        wp.restore()
        wp.write(va, 2)
        assert wp.fault_count == 2  # second epoch faults again

    def test_untouched_pages_survive_restore(self, machine, proc):
        wp, region, va = self.make(machine, proc)
        proc.write(va + 2 * PAGE_SIZE, 7)
        wp.checkpoint()
        wp.write(va, 1)
        wp.restore()
        assert proc.read(va + 2 * PAGE_SIZE) == 7


class TestTrapLogger:
    def test_every_write_traps_and_logs(self, machine, proc):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        region = StdRegion(seg)
        va = region.bind(proc.address_space())
        tl = TrapLogger(proc, region)
        for i in range(5):
            tl.write(va + 4 * i, i)
        assert tl.trap_count == 5
        assert [r.value for r in tl.records] == list(range(5))
        assert seg.read(8, 4) == 2

    def test_cost_is_thousands_of_cycles_per_write(self, machine, proc):
        """Section 5.1: >3,000 cycles per trapped write."""
        seg = StdSegment(PAGE_SIZE, machine=machine)
        region = StdRegion(seg)
        va = region.bind(proc.address_space())
        tl = TrapLogger(proc, region)
        proc.write(va, 0)  # absorb the page fault
        t0 = proc.now
        tl.write(va, 1)
        assert proc.now - t0 >= 3000


class TestInstrumentedLogger:
    def test_records_match_writes(self, machine, proc):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        region = StdRegion(seg)
        va = region.bind(proc.address_space())
        il = InstrumentedLogger(proc, region)
        il.write(va, 11)
        il.write(va + 4, 22)
        assert [(r.addr, r.value) for r in il.records()] == [
            (va, 11),
            (va + 4, 22),
        ]

    def test_cheaper_than_trap_but_not_free(self, machine, proc):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        region = StdRegion(seg)
        va = region.bind(proc.address_space())
        il = InstrumentedLogger(proc, region)
        il.write(va, 0)  # absorb page faults for data and log buffer
        t0 = proc.now
        il.write(va + 4, 1)
        cost = proc.now - t0
        assert 10 < cost < 200

    def test_missed_annotation_detected(self, machine, proc):
        seg = StdSegment(PAGE_SIZE, machine=machine)
        region = StdRegion(seg)
        va = region.bind(proc.address_space())
        il = InstrumentedLogger(proc, region)
        audit = MissedAnnotationAudit(il)
        il.write(va, 1)
        il.unlogged_write(va + 64, 2)  # the forgotten annotation
        missing = audit.missing_offsets()
        assert missing == [64]
