"""Tracer event emission and Chrome trace-event schema validation."""

import pytest

from repro.hw.clock import Clock
from repro.obs.trace import (
    ALL_CATEGORIES,
    DEFAULT_CATEGORIES,
    TID_LOGGER,
    TraceFormatError,
    Tracer,
    validate_trace,
)


class TestTracer:
    def test_default_categories_exclude_chatty_ones(self):
        t = Tracer()
        assert t.categories == set(DEFAULT_CATEGORIES)
        assert "bus" not in t.categories
        assert "logger" not in t.categories
        assert DEFAULT_CATEGORIES < ALL_CATEGORIES

    def test_unknown_category_rejected(self):
        with pytest.raises(TraceFormatError, match="unknown trace categories"):
            Tracer(categories=["bus", "nonsense"])

    def test_complete_event(self):
        t = Tracer(categories=["bus"])
        t.complete("bus", "bus.txn", 10, 5, TID_LOGGER, {"k": 1})
        (ev,) = t.events
        assert ev["ph"] == "X"
        assert ev["ts"] == 10 and ev["dur"] == 5
        assert ev["tid"] == TID_LOGGER
        assert ev["args"] == {"k": 1}

    def test_begin_end_pairing(self):
        t = Tracer(categories=["txn"])
        t.begin("txn", "outer", 0, tid=1)
        t.begin("txn", "inner", 5, tid=1)
        t.end(8, tid=1)
        t.end(10, tid=1)
        phases = [(ev["ph"], ev["name"]) for ev in t.events]
        assert phases == [
            ("B", "outer"), ("B", "inner"), ("E", "inner"), ("E", "outer")
        ]

    def test_end_without_begin_raises(self):
        t = Tracer()
        with pytest.raises(TraceFormatError, match="no open span"):
            t.end(1)

    def test_counter_wraps_scalar_value(self):
        t = Tracer(categories=["metrics"])
        t.counter("metrics", "fifo", 3, 9)
        assert t.events[0]["args"] == {"fifo": 9}
        t.counter("metrics", "multi", 4, {"a": 1, "b": 2})
        assert t.events[1]["args"] == {"a": 1, "b": 2}

    def test_finalize_closes_open_spans(self):
        t = Tracer(categories=["txn"])
        t.begin("txn", "crashing", 0)
        t.finalize(99)
        assert t.events[-1]["ph"] == "E"
        assert t.events[-1]["ts"] == 99
        validate_trace(t.to_json())

    def test_hw_timestamp_uses_clock(self):
        clock = Clock(timestamp_divider=4)
        t = Tracer(clock=clock)
        assert t.hw_timestamp(103) == clock.timestamp(103) == 25
        assert Tracer().hw_timestamp(103) == 0  # clock unbound

    def test_to_json_shape(self):
        clock = Clock()
        clock.advance_to(500)
        t = Tracer(clock=clock, categories=["txn"])
        t.complete("txn", "work", 0, 500, tid=0)
        doc = t.to_json(other_data={"workload": "unit"})
        assert doc["otherData"]["time_unit"] == "machine cycles"
        assert doc["otherData"]["final_cycle"] == 500
        assert doc["otherData"]["workload"] == "unit"
        names = [ev["name"] for ev in doc["traceEvents"] if ev["ph"] == "M"]
        assert "process_name" in names and "thread_name" in names
        assert validate_trace(doc) == len(doc["traceEvents"])

    def test_write_round_trips(self, tmp_path):
        import json

        t = Tracer(categories=["txn"])
        t.complete("txn", "work", 0, 10)
        path = tmp_path / "trace.json"
        doc = t.write(path)
        on_disk = json.loads(path.read_text())
        assert on_disk == doc
        validate_trace(on_disk)


class TestValidateTrace:
    def _doc(self, events):
        return {"traceEvents": events}

    def test_rejects_non_object(self):
        with pytest.raises(TraceFormatError):
            validate_trace([])
        with pytest.raises(TraceFormatError):
            validate_trace({"traceEvents": "nope"})

    def test_rejects_missing_fields(self):
        with pytest.raises(TraceFormatError, match="missing"):
            validate_trace(self._doc([{"ph": "X"}]))

    def test_rejects_unknown_phase(self):
        bad = {"ph": "Q", "name": "x", "pid": 0, "ts": 0}
        with pytest.raises(TraceFormatError, match="unknown phase"):
            validate_trace(self._doc([bad]))

    def test_rejects_negative_ts_and_dur(self):
        bad = {"ph": "X", "name": "x", "pid": 0, "ts": -1, "dur": -2}
        with pytest.raises(TraceFormatError) as exc:
            validate_trace(self._doc([bad]))
        assert "'ts'" in str(exc.value) and "'dur'" in str(exc.value)

    def test_rejects_unbalanced_spans(self):
        events = [{"ph": "B", "name": "x", "pid": 0, "ts": 0, "tid": 3}]
        with pytest.raises(TraceFormatError, match="unclosed 'B'"):
            validate_trace(self._doc(events))
        events = [{"ph": "E", "name": "x", "pid": 0, "ts": 0, "tid": 3}]
        with pytest.raises(TraceFormatError, match="without matching 'B'"):
            validate_trace(self._doc(events))

    def test_rejects_counter_without_args(self):
        bad = {"ph": "C", "name": "x", "pid": 0, "ts": 0}
        with pytest.raises(TraceFormatError, match="dict 'args'"):
            validate_trace(self._doc([bad]))

    def test_counts_valid_events(self):
        events = [
            {"ph": "M", "name": "process_name", "pid": 0, "args": {"name": "m"}},
            {"ph": "X", "name": "x", "pid": 0, "ts": 0, "dur": 1},
            {"ph": "i", "name": "x", "pid": 0, "ts": 0, "s": "t"},
        ]
        assert validate_trace(self._doc(events)) == 3
