"""End-to-end observability: canned workloads, CLI, reconciliation.

The acceptance criteria of the observability layer live here:

* a traced run is cycle-identical to the untraced run;
* the trace's cycle domain reconciles with ``Clock.now``;
* the metrics counters reconcile with :mod:`repro.analysis.logstats`;
* a :class:`CrashPoint` carries the metrics snapshot at the crash cycle.
"""

import json

import pytest

from repro.analysis.logstats import compute_stats
from repro.faults.plan import CrashPoint, FaultPlan, install as install_plan
from repro.obs.cli import main as cli_main, run_traced
from repro.obs.core import Observability, installed
from repro.obs.machine_sources import snapshot_machine
from repro.obs.trace import validate_trace
from repro.obs.workloads import WORKLOADS, run_workload


def _span_ends(doc):
    for ev in doc["traceEvents"]:
        if ev["ph"] == "X":
            yield ev["ts"] + ev["dur"]
        elif ev["ph"] in ("B", "E", "i", "C"):
            yield ev["ts"]


class TestCycleExactness:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_traced_run_is_cycle_identical(self, workload):
        plain = run_workload(workload)["cycles"]
        _, traced = run_traced(workload)
        _, metrics_only = run_traced(
            workload, with_tracer=False, with_profiler=False
        )
        assert traced["cycles"] == plain
        assert metrics_only["cycles"] == plain

    def test_traced_log_records_are_byte_identical(self):
        # The fused fast path packs records with inline division; the
        # generic path (forced by tracing) goes through Clock.timestamp.
        # The two encodings must agree bit for bit.
        plain = run_workload("copy")
        _, traced = run_traced("copy")
        plain_records = list(plain["log"].records())
        traced_records = list(traced["log"].records())
        assert plain_records == traced_records

    def test_metrics_only_keeps_fast_path_tracing_falls_back(self):
        # metrics-only: the bulk engine stayed on the fused loop
        obs, _ = _rerun_with_metrics("copy")
        assert obs.metrics.value("core.bulk.write_runs_fast") > 0
        assert obs.metrics.value("core.bulk.write_runs_slow") == 0
        # tracing: every run fell back to the exact generic path
        obs, _ = run_traced("copy")
        assert obs.metrics.value("core.bulk.write_runs_fast") == 0
        assert obs.metrics.value("core.bulk.write_runs_slow") > 0


def _rerun_with_metrics(workload):
    return run_traced(workload, with_tracer=False, with_profiler=False)


class TestTraceReconciliation:
    def test_trace_cycles_reconcile_with_clock(self):
        obs, summary = run_traced("rvm")
        machine = summary["machine"]
        doc = obs.tracer.to_json()
        validate_trace(doc)
        assert doc["otherData"]["final_cycle"] == machine.clock.now
        assert max(_span_ends(doc)) <= machine.time()

    def test_machine_cycles_counter_track_matches_clock(self):
        obs, summary = run_traced("rvm")
        machine = summary["machine"]
        samples = [
            ev
            for ev in obs.tracer.events
            if ev["ph"] == "C" and ev["name"] == "machine.cycles"
        ]
        assert samples
        assert samples[-1]["args"]["machine.cycles"] == machine.time()

    def test_counters_reconcile_with_logstats(self):
        obs, summary = run_traced("copy", with_tracer=False, with_profiler=False)
        machine = summary["machine"]
        stats = compute_stats(summary["log"])
        snap = snapshot_machine(machine, obs)
        assert snap["gauges"]["hw.logger.records_logged"] == stats.record_count
        assert summary["records_logged"] == stats.record_count
        assert snap["gauges"]["machine.cycles"] == machine.time()

    def test_dma_hw_ts_annotation_matches_clock_timestamp(self):
        # logger.dma events annotate the hardware 6.25 MHz timestamp;
        # it must be ts // divider exactly (Clock.timestamp's contract).
        obs, summary = run_traced("copy", categories=["logger"])
        machine = summary["machine"]
        divider = machine.config.timestamp_divider
        dma = [
            ev
            for ev in obs.tracer.events
            if ev["ph"] == "X" and ev["name"] == "logger.dma"
        ]
        assert dma
        for ev in dma:
            assert ev["args"]["hw_ts"] == machine.clock.timestamp(ev["ts"])
            assert ev["args"]["hw_ts"] == ev["ts"] // divider

    def test_profiler_tracked_cycles_bounded_by_machine_time(self):
        obs, summary = run_traced("rvm")
        machine = summary["machine"]
        assert 0 < obs.profiler.tracked_cycles() <= machine.time()
        report = obs.profiler.report(total_cycles=machine.time())
        assert "rvm.commit" in report
        assert "(untracked)" in report

    def test_timewarp_trace_has_rollbacks_and_gvt(self):
        obs, summary = run_traced("timewarp")
        assert summary["rollbacks"] > 0
        assert obs.metrics.value("tw.events") == summary["events_processed"]
        assert obs.metrics.value("tw.rollbacks") == summary["rollbacks"]
        h = obs.metrics.histogram("tw.rollback_depth")
        assert h.count == summary["rollbacks"]
        assert h.total == summary["events_rolled_back"]
        gvt_track = [
            ev
            for ev in obs.tracer.events
            if ev["ph"] == "C" and ev["name"] == "tw.gvt"
        ]
        assert gvt_track
        assert gvt_track[-1]["args"]["tw.gvt"] == summary["gvt"]


class TestWorkloads:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            run_workload("nope")

    def test_rvm_and_rlvm_commit_and_abort(self):
        for kind in ("rvm", "rlvm"):
            obs, summary = _rerun_with_metrics(kind)
            assert summary["committed"] == 6
            assert summary["aborted"] == 2
            assert obs.metrics.value("rvm.commits") == 6
            assert obs.metrics.value("rvm.aborts") == 2
            assert obs.metrics.histogram("rvm.txn_cycles").count == 8
            assert obs.metrics.value("rvm.wal.appends") == summary["wal_appends"]


class TestCli:
    def test_cli_writes_validated_trace_and_metrics(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        rc = cli_main(
            [
                "rvm",
                "--out", str(trace_path),
                "--metrics-out", str(metrics_path),
            ]
        )
        assert rc == 0
        doc = json.loads(trace_path.read_text())
        validate_trace(doc)
        assert doc["otherData"]["workload"] == "rvm"
        snap = json.loads(metrics_path.read_text())
        assert snap["counters"]["rvm.commits"] == 6
        assert snap["gauges"]["machine.cycles"] > 0
        out = capsys.readouterr().out
        assert "perfetto" in out.lower()
        assert "machine total" in out  # profiler report printed

    def test_cli_category_selection(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        rc = cli_main(
            ["copy", "--out", str(trace_path), "--categories", "logger,metrics"]
        )
        assert rc == 0
        doc = json.loads(trace_path.read_text())
        cats = {ev.get("cat") for ev in doc["traceEvents"] if ev["ph"] == "X"}
        assert cats <= {"logger"}
        assert any(ev["name"] == "logger.dma" for ev in doc["traceEvents"])

    def test_module_dispatch(self, tmp_path, capsys):
        from repro.__main__ import main as repro_main

        rc = repro_main(["trace", "copy", "--out", str(tmp_path / "t.json"),
                         "--no-profile"])
        assert rc == 0
        assert (tmp_path / "t.json").exists()


class TestCrashPointMetrics:
    def test_crashpoint_carries_metrics_snapshot(self):
        from repro.core.context import set_current_machine

        with installed(Observability()) as obs:
            plan = install_plan(FaultPlan.at_site("rvm.commit.log"))
            try:
                with pytest.raises(CrashPoint) as exc:
                    run_workload("rvm")
            finally:
                from repro.faults import plan as faultplan

                faultplan.uninstall()
                set_current_machine(None)
            crash = exc.value
            assert crash.metrics is not None
            assert crash.metrics["counters"]["rvm.set_ranges"] > 0
            # The crash fired inside the commit's log write, before the
            # append completed — emit-on-success means no append counted.
            assert "rvm.wal.appends" not in crash.metrics["counters"]

    def test_crashpoint_metrics_none_when_disabled(self):
        from repro.core.context import set_current_machine
        from repro.faults import plan as faultplan

        install_plan(FaultPlan.at_site("rvm.commit.log"))
        try:
            with pytest.raises(CrashPoint) as exc:
                run_workload("rvm")
        finally:
            faultplan.uninstall()
            set_current_machine(None)
        assert exc.value.metrics is None
