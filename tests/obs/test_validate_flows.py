"""validate_trace: live-timestamp monotonicity and flow-event pairing.

Fixture-driven checks of the two validator rules added for causal
tracing: per-thread non-decreasing ``ts`` over live-emitted phases
(B/E/s/t/f — ``X``/``i`` events legitimately carry earlier or computed
timestamps), and ``s``/``t``/``f`` flow pairing per ``(cat, id)``.
"""

import pytest

from repro.hw.clock import Clock
from repro.obs.trace import TraceFormatError, Tracer, validate_trace


def _doc(*events):
    return {"traceEvents": list(events)}


def _ev(ph, ts, tid=0, **extra):
    base = {"name": "n", "cat": "serve", "ph": ph, "ts": ts, "pid": 0, "tid": tid}
    base.update(extra)
    return base


class TestLiveTimestampMonotonicity:
    def test_decreasing_live_ts_rejected(self):
        doc = _doc(_ev("B", 10), _ev("E", 5))
        with pytest.raises(TraceFormatError, match="'ts' 5 decreases"):
            validate_trace(doc)

    def test_decreasing_ts_on_other_thread_ok(self):
        doc = _doc(_ev("B", 10, tid=1), _ev("B", 5, tid=2),
                   _ev("E", 11, tid=1), _ev("E", 6, tid=2))
        assert validate_trace(doc) == 4

    def test_complete_events_exempt(self):
        # X spans are emitted at op end carrying the op's *start* ts, so
        # emission order is legitimately non-monotonic in ts.
        doc = _doc(_ev("X", 100, dur=5), _ev("X", 20, dur=3))
        assert validate_trace(doc) == 2

    def test_flow_events_are_live(self):
        doc = _doc(
            _ev("s", 50, id=1),
            _ev("t", 40, id=1, bp="e"),
            _ev("f", 60, id=1, bp="e"),
        )
        with pytest.raises(TraceFormatError, match="decreases"):
            validate_trace(doc)


class TestFlowPairing:
    def test_valid_flow_chain_passes(self):
        doc = _doc(
            _ev("s", 10, id=7),
            _ev("t", 20, id=7, bp="e"),
            _ev("t", 30, id=7, bp="e"),
            _ev("f", 40, id=7, bp="e"),
        )
        assert validate_trace(doc) == 4

    def test_flow_needs_int_id(self):
        doc = _doc(_ev("s", 10, id="seven"))
        with pytest.raises(TraceFormatError, match="int 'id'"):
            validate_trace(doc)

    def test_duplicate_start_rejected(self):
        doc = _doc(_ev("s", 10, id=7), _ev("s", 20, id=7))
        with pytest.raises(TraceFormatError, match="duplicate flow start"):
            validate_trace(doc)

    def test_step_without_start_rejected(self):
        doc = _doc(_ev("t", 10, id=7, bp="e"))
        with pytest.raises(TraceFormatError, match="no preceding 's'"):
            validate_trace(doc)

    def test_step_after_finish_rejected(self):
        doc = _doc(
            _ev("s", 10, id=7),
            _ev("f", 20, id=7, bp="e"),
            _ev("t", 30, id=7, bp="e"),
        )
        with pytest.raises(TraceFormatError, match="after it was finished"):
            validate_trace(doc)

    def test_unfinished_flow_rejected(self):
        doc = _doc(_ev("s", 10, id=7))
        with pytest.raises(TraceFormatError, match="never finished"):
            validate_trace(doc)

    def test_same_id_in_other_category_is_distinct(self):
        doc = _doc(
            _ev("s", 10, id=7),
            _ev("s", 11, id=7, cat="wal"),
            _ev("f", 20, id=7, bp="e"),
            _ev("f", 21, id=7, cat="wal", bp="e"),
        )
        assert validate_trace(doc) == 4


class TestTracerFlowEmission:
    def test_flow_helpers_emit_schema_valid_events(self):
        t = Tracer(categories=["serve"], clock=Clock())
        t.flow_start("serve", "serve.req", 10, tid=201, flow_id=3)
        t.flow_step("serve", "serve.req", 20, tid=0, flow_id=3)
        t.flow_end("serve", "serve.req", 30, tid=201, flow_id=3)
        s, step, f = t.events
        assert (s["ph"], step["ph"], f["ph"]) == ("s", "t", "f")
        assert {e["id"] for e in t.events} == {3}
        assert step["bp"] == "e" and f["bp"] == "e"
        assert validate_trace(t.to_json()) == len(t.to_json()["traceEvents"])

    def test_finalize_closes_open_flows(self):
        t = Tracer(categories=["serve"])
        t.flow_start("serve", "serve.req", 10, tid=201, flow_id=3)
        t.flow_start("serve", "serve.req", 12, tid=202, flow_id=4)
        t.finalize(99)
        ends = [e for e in t.events if e["ph"] == "f"]
        assert sorted(e["id"] for e in ends) == [3, 4]
        assert all(e["ts"] == 99 for e in ends)
        assert validate_trace(t.to_json()) == len(t.to_json()["traceEvents"])
