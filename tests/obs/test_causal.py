"""Causal request tracing: stage exactness, flow linkage, zero skew.

The heart of the tracker's contract is *exact* accounting: stage
attribution is stack-based over disjoint cycle intervals, so for every
request the per-stage cycles sum to the end-to-end submit→ack span
with no slack, and the cycles past queue wait equal the server's own
commit-latency measurement.  And because every hook only reads the
clock, an instrumented serve run is cycle- and log-record-identical
to a bare one.
"""

import pytest

from repro.obs import causal
from repro.obs import core as obscore
from repro.obs import flight as obsflight
from repro.obs.causal import STAGES, TraceContext
from repro.obs.cli import run_traced_serve
from repro.obs.core import Observability
from repro.obs.trace import validate_trace
from repro.serve.cli import run_serve

_WORKLOAD = dict(clients=8, txns=3, writes=2, seed=7)


class TestTraceContextArithmetic:
    def test_stage_intervals_are_disjoint_and_exhaustive(self):
        ctx = TraceContext(rid=1, client=0, op="commit", submit_cycle=100)
        ctx.begin(130)                   # queue_wait = 30
        ctx.stage_enter("wal_append", 150)   # library += 20
        ctx.stage_enter("device", 155)       # wal_append += 5
        ctx.stage_exit(180)                  # device += 25
        ctx.stage_exit(184)                  # wal_append += 4
        ctx.finish(190)                      # library += 6
        assert ctx.stages == {
            "queue_wait": 30,
            "library": 26,
            "wal_append": 9,
            "device": 25,
        }
        assert sum(ctx.stages.values()) == ctx.total == 90
        assert ctx.last_stage == "library"

    def test_park_reattributes_to_group_commit_wait(self):
        ctx = TraceContext(rid=1, client=0, op="commit", submit_cycle=0)
        ctx.begin(10)
        ctx.park(30)                     # library += 20, waits from 30
        ctx.finish(90)                   # group_commit_wait += 60
        assert ctx.stages["group_commit_wait"] == 60
        assert sum(ctx.stages.values()) == ctx.total == 90

    def test_hooks_after_finish_are_noops(self):
        ctx = TraceContext(rid=1, client=0, op="commit", submit_cycle=0)
        ctx.begin(10)
        ctx.finish(20)
        before = dict(ctx.stages)
        ctx.stage_enter("device", 30)
        ctx.stage_exit(40)
        ctx.park(50)
        assert ctx.stages == before
        assert ctx.ack_cycle == 20


def _instrumented_run(group=1):
    with obscore.installed(Observability()):
        with causal.installed() as tracker:
            with obsflight.installed():
                result = run_serve(group=group, **_WORKLOAD)
    return tracker, result


class TestStageSumExactness:
    @pytest.mark.parametrize("group", [1, 4], ids=["sync", "grouped"])
    def test_stage_cycles_sum_to_request_span_exactly(self, group):
        tracker, result = _instrumented_run(group=group)
        server = result["server"]
        assert server.crashed is None
        assert len(server.acked) == _WORKLOAD["clients"] * _WORKLOAD["txns"]
        assert not tracker.open
        assert tracker.completed
        for ctx in tracker.completed:
            assert set(ctx.stages) <= set(STAGES)
            # Exact: disjoint stage intervals cover [submit, ack].
            assert sum(ctx.stages.values()) == ctx.ack_cycle - ctx.submit_cycle

    @pytest.mark.parametrize("group", [1, 4], ids=["sync", "grouped"])
    def test_commit_stages_match_server_latency_exactly(self, group):
        tracker, result = _instrumented_run(group=group)
        server = result["server"]
        commits = [ctx for ctx in tracker.completed if ctx.op == "commit"]
        assert len(commits) == len(server.commit_latencies)
        for ctx, latency in zip(commits, server.commit_latencies):
            # The server measures dispatch→ack; the context additionally
            # holds submit→dispatch as queue_wait.  No slack either way.
            assert ctx.total - ctx.stages["queue_wait"] == latency


class TestFlowLinkage:
    def test_serve_trace_links_every_commit_to_wal_and_device(self):
        obs, tracker, result = run_traced_serve(**_WORKLOAD)
        server = result["server"]
        assert server.crashed is None
        doc = obs.tracer.to_json()
        assert validate_trace(doc) > 0
        events = doc["traceEvents"]
        by_rid: dict[int, list] = {}
        for ev in events:
            if ev["ph"] in ("s", "t", "f"):
                by_rid.setdefault(ev["id"], []).append(ev)
        commits = [ctx for ctx in tracker.completed if ctx.op == "commit"]
        assert commits
        for ctx in commits:
            chain = by_rid[ctx.rid]
            phases = [ev["ph"] for ev in chain]
            # One start at the client span, one finish at the ack, and
            # at least the WAL-append and device-write steps between.
            assert phases[0] == "s" and phases[-1] == "f"
            assert phases.count("s") == 1 and phases.count("f") == 1
            assert phases.count("t") >= 2
        # Requests that never touch the log (begin/write) still pair up.
        for ctx in tracker.completed:
            phases = [ev["ph"] for ev in by_rid[ctx.rid]]
            assert phases[0] == "s" and phases[-1] == "f"

    def test_client_spans_carry_stage_breakdown(self):
        obs, tracker, result = run_traced_serve(**_WORKLOAD)
        doc = obs.tracer.to_json()
        spans = [
            ev
            for ev in doc["traceEvents"]
            if ev["ph"] == "X" and ev["name"] == "serve.req"
        ]
        assert len(spans) == len(tracker.completed)
        for ev in spans:
            stages = ev["args"]["stages"]
            assert sum(stages.values()) == ev["dur"]

    def test_stage_histograms_exported(self):
        obs, tracker, result = run_traced_serve(**_WORKLOAD)
        hist = obs.metrics.snapshot()["histograms"]
        assert hist["serve.request_cycles"]["count"] == len(tracker.completed)
        assert "serve.stage_cycles.queue_wait" in hist
        assert "serve.stage_cycles.wal_append" in hist


class TestInstrumentationIsFree:
    @pytest.mark.parametrize("group", [1, 4], ids=["sync", "grouped"])
    def test_instrumented_run_cycle_and_log_identical(self, group):
        bare = run_serve(group=group, **_WORKLOAD)
        tracker, instrumented = _instrumented_run(group=group)
        assert tracker.completed  # the tracker really was live
        assert (
            instrumented["machine"].time() == bare["machine"].time()
        ), "causal tracking must not advance the clock"
        assert instrumented["server"].acked == bare["server"].acked
        assert (
            instrumented["server"].commit_latencies
            == bare["server"].commit_latencies
        )
        bare_wal = [
            (e.kind, e.tid) for e in bare["library"].wal.entries()
        ]
        inst_wal = [
            (e.kind, e.tid) for e in instrumented["library"].wal.entries()
        ]
        assert inst_wal == bare_wal
