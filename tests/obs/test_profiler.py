"""CycleProfiler: flat + cumulative attribution in the cycle domain."""

from repro.obs.profiler import CycleProfiler


class TestCycleProfiler:
    def test_flat_leaf_interval(self):
        p = CycleProfiler()
        p.record("disk.write", 100, 160)
        s = p.sites["disk.write"]
        assert (s.calls, s.self_cycles, s.total_cycles) == (1, 60, 60)

    def test_nested_spans_split_self_and_total(self):
        p = CycleProfiler()
        p.push("commit", 0)
        p.record("wal.append", 10, 40)  # child: 30 cycles
        p.pop(100)
        commit = p.sites["commit"]
        assert commit.total_cycles == 100
        assert commit.self_cycles == 70  # 100 - child's 30
        assert p.sites["wal.append"].self_cycles == 30
        # Every cycle counted exactly once across self times.
        assert p.tracked_cycles() == 100

    def test_per_tid_stacks_are_independent(self):
        p = CycleProfiler()
        p.push("cpu0.work", 0, tid=0)
        p.push("logger.drain", 5, tid=100)
        p.pop(25, tid=100)
        p.pop(50, tid=0)
        # tid 100's span must not register as a child of tid 0's.
        assert p.sites["cpu0.work"].self_cycles == 50
        assert p.sites["logger.drain"].self_cycles == 20

    def test_after_the_fact_parent_absorbs_closed_children(self):
        # Crash-safe instrumentation emits spans only after an operation
        # succeeds, so children are recorded before their parent.
        p = CycleProfiler()
        p.record("disk.write", 10, 40)
        p.record("disk.write", 50, 70)
        p.record("wal.append", 5, 80)
        p.record("rvm.commit", 0, 100)
        assert p.sites["disk.write"].self_cycles == 50
        assert p.sites["wal.append"].self_cycles == 25  # 75 - 50
        assert p.sites["rvm.commit"].self_cycles == 25  # 100 - 75
        assert p.tracked_cycles() == 100

    def test_unbalanced_pop_tolerated(self):
        p = CycleProfiler()
        p.pop(10)  # crash unwinding may pop an empty stack
        assert p.sites == {}

    def test_negative_interval_clamped(self):
        p = CycleProfiler()
        p.record("x", 100, 90)
        assert p.sites["x"].total_cycles == 0

    def test_finalize_closes_open_spans(self):
        p = CycleProfiler()
        p.push("a", 0)
        p.push("b", 10)
        p.finalize(100)
        assert p.sites["a"].total_cycles == 100
        assert p.sites["b"].total_cycles == 90
        assert not any(p._stacks.values())

    def test_report_flat_cumulative_untracked(self):
        p = CycleProfiler()
        p.record("hot", 0, 600)
        p.record("cold", 600, 700)
        text = p.report(total_cycles=1000)
        lines = text.splitlines()
        # Sorted by self time, widest first.
        assert lines[2].startswith("hot")
        assert lines[3].startswith("cold")
        assert "(untracked)" in text
        assert "300" in text  # 1000 - 700 tracked
        assert "machine total" in text

    def test_snapshot_is_json_ready(self):
        p = CycleProfiler()
        p.record("x", 0, 10)
        assert p.snapshot() == {
            "x": {"calls": 1, "self_cycles": 10, "total_cycles": 10}
        }
