"""Crash forensics end to end: traced crash → bundle → replay.

One injected crash is driven through a fully instrumented serve run
(tracer + causal tracker + flight recorder).  The tests pin that the
resulting trace is schema-valid even though requests died mid-flow,
that the postmortem bundle round-trips through disk and names the
in-flight requests, and that ``replay crash --bundle`` re-drives the
run to the *same* crash with byte-identical durable state.
"""

import pytest

from repro.errors import ConfigError
from repro.faults.plan import CrashSpec, FaultPlan
from repro.obs.cli import obs_main, run_traced_serve
from repro.obs.postmortem import (
    build_bundle,
    load_bundle,
    snapshot_digests,
    summarize,
    write_bundle,
)
from repro.obs.trace import validate_trace
from repro.replay.cli import main as replay_main

_WORKLOAD = dict(clients=8, txns=3, writes=2, seed=7)


def _plan():
    return FaultPlan(seed=7, crash=CrashSpec("backend.flush", 3))


def _traced_crash():
    obs, tracker, result = run_traced_serve(plan=_plan(), **_WORKLOAD)
    assert result["crash"] is not None
    return obs, tracker, result


class TestTracedCrash:
    def test_crashed_trace_still_validates(self):
        obs, tracker, result = _traced_crash()
        doc = obs.tracer.to_json()
        # Dropped requests' flows were force-finished by finalize; the
        # validator's pairing and monotonicity rules must still hold.
        assert validate_trace(doc) > 0

    def test_open_spans_captured_before_finalize(self):
        obs, tracker, result = _traced_crash()
        # The dying commit's span stack was still open at the crash.
        assert any(stack for stack in result["open_spans"].values())

    def test_tracker_reports_the_unacked_requests_as_dropped(self):
        obs, tracker, result = _traced_crash()
        server = result["server"]
        assert not tracker.open  # drop() forgot every unserved request
        completed_commits = [c for c in tracker.completed if c.op == "commit"]
        assert len(completed_commits) == len(server.acked)
        assert len(server.acked) < _WORKLOAD["clients"] * _WORKLOAD["txns"]


class TestPostmortemBundle:
    def _bundle(self, tmp_path):
        obs, tracker, result = _traced_crash()
        server = result["server"]
        bundle = build_bundle(
            result["crash"],
            workload=result["workload"],
            metrics=obs.metrics.snapshot(),
            open_spans=result["open_spans"],
            inflight=server.crash_inflight,
            acked=list(server.acked),
        )
        path = tmp_path / "postmortem.json"
        write_bundle(path, bundle)
        return path, bundle, result

    def test_bundle_round_trips_through_disk(self, tmp_path):
        path, bundle, result = self._bundle(tmp_path)
        loaded = load_bundle(path)
        assert loaded == bundle
        assert loaded["crash"]["site"] == "backend.flush"
        assert loaded["crash"]["seq"] == 3
        assert loaded["inflight"]
        assert loaded["inflight"][0]["last_stage"] == "barrier"
        # The flight tail ends in the fatal event.
        assert loaded["flight"][-1][1] == "fault.crash"
        assert loaded["digests"] == snapshot_digests(result["crash"].snapshot)

    def test_summary_names_the_crash_and_inflight(self, tmp_path):
        path, bundle, _result = self._bundle(tmp_path)
        text = summarize(load_bundle(path))
        assert "backend.flush" in text
        assert "in flight" in text
        assert "flight recorder" in text

    def test_obs_postmortem_cli_loads_it(self, tmp_path, capsys):
        path, _bundle, _result = self._bundle(tmp_path)
        assert obs_main(["postmortem", str(path)]) == 0
        out = capsys.readouterr().out
        assert "backend.flush" in out

    def test_load_rejects_non_bundles(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"kind": "something-else"}\n')
        with pytest.raises(ConfigError, match="not a lvm-postmortem"):
            load_bundle(path)


class TestReplayFromBundle:
    def test_replay_crash_bundle_reaches_identical_crash(self, tmp_path, capsys):
        obs, tracker, result = _traced_crash()
        server = result["server"]
        bundle = build_bundle(
            result["crash"],
            workload=result["workload"],
            inflight=server.crash_inflight,
            acked=list(server.acked),
        )
        path = tmp_path / "postmortem.json"
        write_bundle(path, bundle)
        # The replay runs *without* any instrumentation installed — the
        # identity invariant is what makes the bundle a replay recipe.
        assert replay_main(["crash", "--bundle", str(path)]) == 0
        out = capsys.readouterr().out
        assert "digests identical" in out
