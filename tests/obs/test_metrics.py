"""MetricsRegistry: instruments, polled sources, snapshots."""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_gauge_sets(self):
        g = Gauge("x")
        g.set(7)
        g.set(3)
        assert g.value == 3

    def test_histogram_aggregates(self):
        h = Histogram("x")
        for v in (1, 2, 3, 100):
            h.observe(v)
        assert h.count == 4
        assert h.total == 106
        assert h.min == 1
        assert h.max == 100
        assert h.mean == 106 / 4

    def test_histogram_power_of_two_buckets(self):
        h = Histogram("x")
        # bucket k counts values in [2^(k-1), 2^k)
        h.observe(1)  # bit_length 1
        h.observe(2)  # bit_length 2
        h.observe(3)  # bit_length 2
        h.observe(1000)  # bit_length 10
        assert h.buckets == {1: 1, 2: 2, 10: 1}
        snap = h.snapshot()
        assert snap["buckets"] == {"<2^1": 1, "<2^2": 2, "<2^10": 1}

    def test_empty_histogram_mean(self):
        assert Histogram("x").mean == 0.0


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_shorthands(self):
        reg = MetricsRegistry()
        reg.inc("c", 5)
        reg.observe("h", 16)
        reg.set_gauge("g", 9)
        assert reg.value("c") == 5
        assert reg.value("g") == 9
        assert reg.value("missing", default=-1) == -1
        assert reg.histogram("h").count == 1

    def test_polled_source_runs_at_snapshot(self):
        reg = MetricsRegistry()
        calls = []
        reg.add_source(lambda r: (calls.append(1), r.set_gauge("polled", 123)))
        assert calls == []  # zero cost during the run
        snap = reg.snapshot()
        assert calls == [1]
        assert snap["gauges"]["polled"] == 123

    def test_snapshot_shape_and_sorting(self):
        reg = MetricsRegistry()
        reg.inc("z.second")
        reg.inc("a.first")
        reg.observe("lat", 10)
        snap = reg.snapshot()
        assert list(snap) == ["counters", "gauges", "histograms"]
        assert list(snap["counters"]) == ["a.first", "z.second"]
        assert snap["histograms"]["lat"]["count"] == 1
