"""The always-on flight recorder: ring semantics and crash capture.

The recorder is a bounded deque of cycle-stamped events; the tests pin
the ring arithmetic (capacity, eviction, ``seen``/``dropped``), the
LVM004 install gate, and the contract that matters: an injected
:class:`CrashPoint` carries the recorder tail, ending in the
``fault.crash`` event for the site that fired.
"""

import pytest

from repro.errors import ConfigError
from repro.faults import plan as faultplan
from repro.faults.plan import CrashPoint, CrashSpec, FaultPlan
from repro.faults.sweep import DEFAULT_SCRIPT, run_script
from repro.obs import flight as obsflight
from repro.obs.flight import FlightRecorder
from repro.rvm.rlvm import RLVM


class TestRing:
    def test_records_in_order_oldest_first(self):
        fr = FlightRecorder(capacity=8)
        for i in range(5):
            fr.record(100 + i, "k", i)
        assert len(fr) == 5
        assert fr.seen == 5
        assert fr.dropped == 0
        assert fr.tail() == [(100 + i, "k", i, None) for i in range(5)]

    def test_ring_evicts_oldest_and_counts_drops(self):
        fr = FlightRecorder(capacity=4)
        for i in range(10):
            fr.record(i, "k", i)
        assert len(fr) == 4
        assert fr.seen == 10
        assert fr.dropped == 6
        assert [event[0] for event in fr.tail()] == [6, 7, 8, 9]

    def test_tail_limit_takes_newest(self):
        fr = FlightRecorder(capacity=8)
        for i in range(6):
            fr.record(i, "k")
        assert [event[0] for event in fr.tail(2)] == [4, 5]

    def test_clear_keeps_seen(self):
        fr = FlightRecorder(capacity=4)
        fr.record(1, "k")
        fr.clear()
        assert len(fr) == 0
        assert fr.seen == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigError):
            FlightRecorder(capacity=0)


class TestGate:
    def test_install_uninstall(self):
        assert obsflight.active() is None
        with obsflight.installed() as fr:
            assert obsflight.active() is fr
            with pytest.raises(ConfigError):
                obsflight.install(FlightRecorder())
        assert obsflight.active() is None

    def test_tail_if_active(self):
        assert obsflight.tail_if_active() is None
        with obsflight.installed() as fr:
            fr.record(7, "k", "a", "b")
            assert obsflight.tail_if_active() == [(7, "k", "a", "b")]
        assert obsflight.tail_if_active() is None


class TestCrashCapture:
    def test_crashpoint_carries_recorder_tail(self):
        plan = FaultPlan(seed=3, crash=CrashSpec("backend.flush", 2))
        with obsflight.installed() as fr:
            result = run_script(RLVM, DEFAULT_SCRIPT, plan)
        crash = result.crash
        assert isinstance(crash, CrashPoint)
        assert crash.flight is not None
        assert crash.flight == fr.tail()
        kinds = [event[1] for event in crash.flight]
        # The run logged WAL/device activity before dying...
        assert "wal.append" in kinds
        assert "device.write" in kinds
        # ...site hits are recorded while the plan is installed...
        assert "fault.hit" in kinds
        # ...and the terminal event is the crash itself, at the site.
        assert crash.flight[-1][1] == "fault.crash"
        assert crash.flight[-1][2] == "backend.flush"

    def test_crashpoint_flight_none_when_recorder_off(self):
        plan = FaultPlan(seed=3, crash=CrashSpec("backend.flush", 2))
        result = run_script(RLVM, DEFAULT_SCRIPT, plan)
        assert result.crash is not None
        assert result.crash.flight is None

    def test_fault_hits_recorded_only_under_a_plan(self):
        with obsflight.installed() as fr:
            # No plan installed: hit() is a no-op and records nothing.
            assert faultplan._ACTIVE is None
            faultplan.hit("backend.flush", cycle=1)
            assert len(fr) == 0
