"""The Observability gate: install/uninstall, span routing, nesting."""

import pytest

from repro.errors import ConfigError
from repro.obs import core as obscore
from repro.obs.core import Observability, installed
from repro.obs.profiler import CycleProfiler
from repro.obs.trace import Tracer, validate_trace


class TestInstall:
    def test_disabled_by_default(self):
        assert obscore._ACTIVE is None
        assert obscore.active() is None
        assert not obscore.trace_detail_active()
        assert obscore.metrics_snapshot_if_active() is None

    def test_install_uninstall(self):
        obs = Observability()
        obscore.install(obs)
        try:
            assert obscore.active() is obs
            with pytest.raises(ConfigError, match="already installed"):
                obscore.install(Observability())
        finally:
            obscore.uninstall()
        assert obscore.active() is None

    def test_installed_context_manager(self):
        obs = Observability()
        with installed(obs) as o:
            assert o is obs and obscore.active() is obs
        assert obscore.active() is None

    def test_installed_uninstalls_on_error(self):
        with pytest.raises(RuntimeError):
            with installed(Observability()):
                raise RuntimeError("boom")
        assert obscore.active() is None

    def test_trace_detail_requires_a_tracer(self):
        with installed(Observability()):
            assert not obscore.trace_detail_active()  # metrics-only
        with installed(Observability(tracer=Tracer())):
            assert obscore.trace_detail_active()

    def test_metrics_snapshot_if_active(self):
        with installed(Observability()) as obs:
            obs.metrics.inc("x", 3)
            snap = obscore.metrics_snapshot_if_active()
        assert snap["counters"]["x"] == 3


class TestSpanRouting:
    def test_span_feeds_tracer_and_profiler(self):
        obs = Observability(tracer=Tracer(categories=["txn"]), profiler=CycleProfiler())
        obs.span("txn", "work", 10, 30, tid=1)
        assert obs.tracer.events[0]["ph"] == "X"
        assert obs.profiler.sites["work"].total_cycles == 20

    def test_disabled_category_still_profiles(self):
        obs = Observability(tracer=Tracer(categories=["txn"]), profiler=CycleProfiler())
        obs.span("bus", "bus.txn", 0, 5)
        assert obs.tracer.events == []  # category off
        assert obs.profiler.sites["bus.txn"].calls == 1

    def test_disabled_inner_span_does_not_close_enabled_outer(self):
        # The regression the _traced stack exists for: an enabled outer
        # B span must survive a disabled-category inner begin/end pair.
        obs = Observability(tracer=Tracer(categories=["txn"]))
        obs.span_begin("txn", "outer", 0, tid=2)
        obs.span_begin("bus", "inner", 1, tid=2)  # not traced
        obs.span_end(2, tid=2)  # must NOT emit an E for "outer"
        obs.span_end(3, tid=2)
        phases = [(ev["ph"], ev["name"]) for ev in obs.tracer.events]
        assert phases == [("B", "outer"), ("E", "outer")]
        validate_trace(obs.tracer.to_json())

    def test_counter_tracks_sample_registry_counters(self):
        obs = Observability(tracer=Tracer(categories=["metrics"]))
        obs.metrics.inc("a", 7)
        obs.emit_counter_tracks(ts=42)
        (ev,) = obs.tracer.events
        assert ev["ph"] == "C" and ev["args"] == {"a": 7}
        assert ev["ts"] == 42

    def test_finalize_closes_everything(self):
        obs = Observability(
            tracer=Tracer(categories=["txn"]), profiler=CycleProfiler()
        )
        obs.span_begin("txn", "open", 0, tid=1)
        obs.finalize(50)
        validate_trace(obs.tracer.to_json())
        assert obs.profiler.sites["open"].total_cycles == 50
        assert obs._traced == {}

    def test_metrics_only_needs_no_tracer(self):
        obs = Observability()
        obs.span("txn", "work", 0, 10)
        obs.instant("kernel", "fault", 5)
        obs.counter_track("metrics", "x", 1, 2)  # all no-ops, no error
        obs.metrics.inc("x")
        assert obs.metrics.value("x") == 1
