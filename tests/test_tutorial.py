"""The tutorial's runnable snippets must actually run.

Extracts the ```python blocks from docs/TUTORIAL.md and executes them
sequentially in one namespace (they build on each other, as a reader
typing along would experience).  Blocks containing ellipses are
illustrative and skipped.
"""

import pathlib
import re

import pytest

from repro.core.context import set_current_machine

TUTORIAL = pathlib.Path(__file__).resolve().parent.parent / "docs" / "TUTORIAL.md"


def python_blocks():
    text = TUTORIAL.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, re.DOTALL)
    return [b for b in blocks if "..." not in b and "pip install" not in b]


def test_tutorial_snippets_run(capsys):
    blocks = python_blocks()
    assert len(blocks) >= 6, "tutorial lost its runnable snippets"
    set_current_machine(None)
    namespace: dict = {}
    try:
        for i, block in enumerate(blocks):
            try:
                exec(compile(block, f"<tutorial block {i}>", "exec"), namespace)
            except Exception as exc:  # pragma: no cover - failure path
                pytest.fail(f"tutorial block {i} failed: {exc}\n---\n{block}")
    finally:
        set_current_machine(None)
