"""The asyncio serving front-end: concurrency, ordering, crash honesty.

Many concurrent clients drive begin/write/commit against one server;
the tests pin that (a) the serialised commit order matches the WAL's
append order, (b) serve runs are schedule-deterministic, and (c) a
mid-serve crash recovers to exactly the commits that were acknowledged
durable — the contract that makes a commit acknowledgement mean
something.
"""

import asyncio
import random

import pytest

from repro.backends import make_backend
from repro.core.context import boot, set_current_machine
from repro.faults import plan as faultplan
from repro.faults.checker import capture_snapshot, recover
from repro.faults.plan import CrashSpec, FaultPlan
from repro.hw.params import MachineConfig
from repro.obs import core as obscore
from repro.obs.core import Observability
from repro.rvm.rlvm import RLVM
from repro.rvm.rvm import RVM
from repro.rvm.wal import EntryKind
from repro.serve.channel import Channel
from repro.serve.server import ClientSession, ServeCrashed, TxnServer

SERVE_CONFIG = MachineConfig(memory_bytes=32 * 1024 * 1024)
DEVICE_BYTES = 256 * 1024


async def _client(server, client_id, txns, writes, seed, writes_by_tid):
    """A seeded client; survives a server crash by stopping early."""
    session = ClientSession(server, client_id)
    rng = random.Random(seed * 10_007 + client_id)
    try:
        for _ in range(txns):
            if server.crashed is not None:
                return
            tid = await session.begin()
            mine = writes_by_tid.setdefault(tid, [])
            for _ in range(writes):
                if server.crashed is not None:
                    return
                word, value = rng.randrange(256), rng.randrange(1 << 32)
                await session.write(word, value)
                mine.append((word, value))
            if server.crashed is not None:
                return
            await session.commit()
    except ServeCrashed:
        return


async def _drive(server, clients, txns, writes, seed, writes_by_tid):
    serve_task = asyncio.ensure_future(server.serve())
    await asyncio.gather(
        *(_client(server, c, txns, writes, seed, writes_by_tid) for c in range(clients))
    )
    if server.crashed is None:
        await ClientSession(server, -1).shutdown()
    await serve_task


def _serve_run(
    library_cls,
    device_name="ram",
    group_commit=False,
    group_size=1,
    clients=16,
    txns=3,
    writes=3,
    seed=1995,
    plan=None,
):
    """Boot a fresh machine, serve one full client fleet, tear down.

    Returns ``(server, library, writes_by_tid, wal_commit_order)``.
    A ``plan`` installs fault injection for the duration of the serve.
    """
    machine = boot(SERVE_CONFIG)
    try:
        device = make_backend(device_name, DEVICE_BYTES, group_commit=group_commit)
        library = library_cls(machine.current_process, disk=device)
        server = TxnServer(library, group_size=group_size, seg_bytes=8192)
        writes_by_tid = {}
        if plan is not None:
            plan.snapshot_source(lambda: capture_snapshot(library))
            with faultplan.installed(plan):
                asyncio.run(
                    _drive(server, clients, txns, writes, seed, writes_by_tid)
                )
        else:
            asyncio.run(_drive(server, clients, txns, writes, seed, writes_by_tid))
        # A crashed library's in-memory WAL tail may point past the
        # durable bytes on a buffering device; only scan it when the
        # serve completed cleanly.
        wal_commit_order = (
            [e.tid for e in library.wal.entries() if e.kind is EntryKind.COMMIT]
            if server.crashed is None
            else []
        )
        return server, library, writes_by_tid, wal_commit_order
    finally:
        set_current_machine(None)


class TestConcurrentServing:
    @pytest.mark.parametrize("library_cls", [RVM, RLVM], ids=["rvm", "rlvm"])
    def test_sixteen_clients_fully_served_in_wal_order(self, library_cls):
        server, library, _writes, wal_order = _serve_run(library_cls, clients=16)
        assert server.crashed is None
        assert len(server.acked) == 16 * 3
        # Serialised commit order is exactly the WAL's append order.
        assert server.commit_order == wal_order
        assert server.acked == server.commit_order  # sync: ack == commit
        assert sorted(library.wal.committed_tids()) == sorted(server.acked)
        assert len(server.commit_latencies) == len(server.acked)

    def test_group_commit_withholds_acks_until_durable(self):
        server, library, _writes, wal_order = _serve_run(
            RVM, device_name="disk", group_commit=True, group_size=4
        )
        assert server.crashed is None
        assert len(server.acked) == 16 * 3
        assert server.commit_order == wal_order
        # Acks happen in batches but still in commit order.
        assert server.acked == server.commit_order
        # Batch of 4: one library flush per 4 commits (plus drain/shutdown).
        assert library.disk.flush_ops < len(server.acked)

    def test_serving_is_schedule_deterministic(self):
        a = _serve_run(RVM, clients=16, seed=7)
        b = _serve_run(RVM, clients=16, seed=7)
        assert a[0].acked == b[0].acked
        assert a[0].commit_latencies == b[0].commit_latencies
        assert a[3] == b[3]

    def test_per_backend_latency_histograms(self):
        with obscore.installed(Observability()) as obs:
            server, _lib, _writes, _order = _serve_run(
                RVM, device_name="nvram_tmpfs", clients=4, txns=2
            )
            snapshot = obs.metrics.snapshot()
        hists = snapshot["histograms"]
        assert "serve.commit_cycles" in hists
        assert "serve.commit_cycles.nvram_tmpfs" in hists
        assert hists["serve.commit_cycles"]["count"] == len(server.acked) == 8
        assert hists["serve.commit_cycles.nvram_tmpfs"]["count"] == 8

    def test_group_commit_cuts_mean_latency_on_slow_media(self):
        sync, *_ = _serve_run(RVM, device_name="disk", group_size=1)
        grouped, *_ = _serve_run(
            RVM, device_name="disk", group_commit=True, group_size=8
        )
        mean = lambda xs: sum(xs) // len(xs)
        assert mean(grouped.commit_latencies) < mean(sync.commit_latencies)


class TestCrashDuringServe:
    def test_crash_recovers_to_exactly_the_acked_commits(self):
        """Group-commit serving: the batch flush is the durability
        point, so a crash there must lose precisely the unacknowledged
        batch — recovery sees the acked commits and nothing else."""
        plan = FaultPlan(seed=3, crash=CrashSpec("backend.flush", 3, "before"))
        server, _lib, writes_by_tid, _order = _serve_run(
            RVM,
            device_name="disk",
            group_commit=True,
            group_size=4,
            plan=plan,
        )
        assert server.crashed is not None
        # Two full batches were acknowledged before the third flush died.
        assert len(server.acked) == 8
        recovered = recover(server.crashed.snapshot)
        assert recovered.committed_tids == frozenset(server.acked)
        # The recovered image is exactly the acked commits replayed in
        # commit order over a fresh segment.
        expected = bytearray(len(recovered.images["db"]))
        data_off = server.base_va - _lib.segments["db"].base_va
        for tid in server.commit_order:
            if tid not in recovered.committed_tids:
                continue
            for word, value in writes_by_tid[tid]:
                off = data_off + 4 * word
                expected[off : off + 4] = value.to_bytes(4, "little")
        assert recovered.images["db"] == bytes(expected)

    def test_sync_crash_never_loses_an_acked_commit(self):
        """Synchronous serving: a crash mid-commit may leave that one
        commit durable-but-unacked, but every acknowledged commit must
        survive recovery."""
        plan = FaultPlan(seed=3, crash=CrashSpec("rvm.commit.durable", 20, "before"))
        server, _lib, _writes, _order = _serve_run(RVM, plan=plan)
        assert server.crashed is not None
        recovered = recover(server.crashed.snapshot)
        acked = frozenset(server.acked)
        assert acked <= recovered.committed_tids
        # At most the single in-flight commit beyond the acked set.
        assert len(recovered.committed_tids - acked) <= 1

    def test_crash_fails_every_outstanding_future(self):
        """No client coroutine may hang: begin/write/commit futures in
        flight at the crash all resolve with ServeCrashed."""
        plan = FaultPlan(seed=3, crash=CrashSpec("backend.flush", 2, "before"))
        server, _lib, _writes, _order = _serve_run(
            RVM, device_name="ram", group_commit=True, group_size=4, plan=plan
        )
        assert server.crashed is not None
        assert server.channel.pending() == 0
        assert not server._batch and not server._parked

    def test_parked_begin_and_inflight_commit_fail_on_crash(self):
        """The in-flight commit and a begin parked behind it both see
        the crash — neither client coroutine hangs."""

        async def scenario(server):
            task = asyncio.ensure_future(server.serve())
            s0 = ClientSession(server, 0)
            s1 = ClientSession(server, 1)
            await s0.begin()
            parked = asyncio.ensure_future(s1.begin())  # queued behind s0
            await s0.write(0, 0xDEAD)
            with pytest.raises(ServeCrashed):
                await s0.commit()  # the first commit crashes
            with pytest.raises(ServeCrashed):
                await parked
            await task

        machine = boot(SERVE_CONFIG)
        try:
            library = RVM(
                machine.current_process,
                disk=make_backend("ram", DEVICE_BYTES),
            )
            plan = FaultPlan(
                seed=0, crash=CrashSpec("rvm.commit.begin", 1, "before")
            )
            plan.snapshot_source(lambda: capture_snapshot(library))
            server = TxnServer(library, seg_bytes=8192)
            with faultplan.installed(plan):
                asyncio.run(scenario(server))
            assert server.crashed is not None
            assert server.acked == []
        finally:
            set_current_machine(None)
