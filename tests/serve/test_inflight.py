"""ServeCrashed carries the in-flight request descriptors.

When an injected fault kills the server, every client whose request
was mid-dispatch, batched, parked, or still queued gets the same
:class:`ServeCrashed` — and the exception (plus the server's
``crash_inflight`` mirror) names those requests: rid, client, op, and
— when a :class:`CausalTracker` is installed — the last pipeline stage
each one completed before the power went out.
"""

from repro.faults.plan import CrashSpec, FaultPlan
from repro.obs import causal
from repro.serve.cli import run_serve
from repro.serve.server import ServeCrashed

_WORKLOAD = dict(clients=8, txns=3, writes=2, seed=7)


def _crash_plan(nth=3):
    return FaultPlan(seed=7, crash=CrashSpec("backend.flush", nth))


class TestInflightOnCrash:
    def test_serve_crashed_lists_inflight_requests(self):
        result = run_serve(plan=_crash_plan(), **_WORKLOAD)
        error = result["error"]
        server = result["server"]
        assert isinstance(error, ServeCrashed)
        assert server.crashed is not None
        assert error.inflight  # the dying commit at minimum
        assert error.inflight == server.crash_inflight
        for req in error.inflight:
            assert isinstance(req["rid"], int)
            assert isinstance(req["client"], int)
            assert req["op"] in ("begin", "write", "commit", "abort", "shutdown")
        # The mid-dispatch request — the one whose work tripped the
        # fault — is listed first, and it was a commit reaching for
        # the device flush.
        assert error.inflight[0]["op"] == "commit"

    def test_last_stage_populated_with_causal_tracker(self):
        with causal.installed():
            result = run_serve(plan=_crash_plan(), **_WORKLOAD)
        error = result["error"]
        assert isinstance(error, ServeCrashed)
        head = error.inflight[0]
        # The crash fired at the flush fault point, inside the barrier
        # stage the device hook had just opened.
        assert head["last_stage"] == "barrier"
        assert all("last_stage" in req for req in error.inflight)

    def test_last_stage_none_without_tracker(self):
        result = run_serve(plan=_crash_plan(), **_WORKLOAD)
        assert all(
            req["last_stage"] is None for req in result["error"].inflight
        )

    def test_inflight_empty_on_clean_run(self):
        result = run_serve(**_WORKLOAD)
        assert result["error"] is None
        assert result["crash"] is None
        assert result["server"].crash_inflight == []
