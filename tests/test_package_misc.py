"""Remaining odds and ends: package demo, small analysis helpers, docs."""

import pathlib

import pytest

from conftest import make_logged_region
from repro.analysis import inter_write_gaps
from repro.core.context import set_current_machine

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestPackageDemo:
    def test_main_module_runs(self, capsys):
        import repro.__main__ as demo

        set_current_machine(None)
        try:
            demo.main()
        finally:
            set_current_machine(None)
        out = capsys.readouterr().out
        assert "Logged Virtual Memory" in out
        assert "addr=" in out

    def test_version_exposed(self):
        import repro

        assert repro.__version__


class TestSmallHelpers:
    def test_inter_write_gaps(self, machine, proc):
        region, log, va = make_logged_region(machine)
        proc.write(va, 1)
        proc.compute(400)
        proc.write(va + 4, 2)
        proc.compute(40)
        proc.write(va + 8, 3)
        machine.quiesce()
        gaps = inter_write_gaps(list(log.records()))
        assert len(gaps) == 2
        assert gaps[0] > gaps[1] > 0

    def test_indexed_log_with_values_sizes(self, machine, proc):
        from repro.core.log_segment import LogSegment
        from repro.core.region import StdRegion
        from repro.core.segment import StdSegment
        from repro.hw.logger import LogMode

        seg = StdSegment(4096, machine=machine)
        region = StdRegion(seg)
        log = LogSegment(machine=machine)
        region.log(log, mode=LogMode.INDEXED)
        va = region.bind(proc.address_space())
        for v in (1, 2, 3):
            proc.write(va, v)
        machine.quiesce()
        # Indexed entries are bare 4-byte values at 4-byte stride.
        assert log.append_offset == 3 * 4
        assert list(log.values()) == [1, 2, 3]


class TestDocumentationDeliverables:
    @pytest.mark.parametrize(
        "name", ["README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/TUTORIAL.md"]
    )
    def test_doc_exists_and_substantial(self, name):
        path = REPO / name
        assert path.exists(), f"{name} missing"
        assert len(path.read_text()) > 2000, f"{name} looks like a stub"

    def test_design_confirms_paper_identity(self):
        text = (REPO / "DESIGN.md").read_text()
        assert "Cheriton" in text and "SOSP 1995" in text

    def test_experiments_covers_every_table_and_figure(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for item in ["Table 2", "Table 3"] + [f"Figure {n}" for n in range(7, 13)]:
            assert item in text, f"EXPERIMENTS.md missing {item}"
