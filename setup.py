"""Setup shim: enables legacy editable installs (`pip install -e .`)
on environments without the `wheel` package (no-network install path).
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
